// gcs_stat — poll the in-process stats endpoints of a running job and
// render a live per-rank table.
//
// Each rank of a telemetry-enabled run (gcs_worker --stats-port=<p>, or
// any process that constructed a telemetry::StatsServer) serves the
// Prometheus text exposition over plain HTTP. This tool scrapes one or
// more such endpoints and renders the metrics that matter for "is the
// job healthy" at a glance: rounds completed, codec bytes, wire traffic,
// stale frames, elastic-membership epoch/world.
//
//   gcs_stat --targets=127.0.0.1:9200,127.0.0.1:9201   # poll + table
//   gcs_stat --targets=... --once                      # one scrape, exit
//   gcs_stat --targets=... --once --validate
//            --require=gcs_pipeline_rounds_total       # CI gate
//   gcs_stat --targets=... --once --dump=snapshot.prom # save raw text
//
// Exit status: 0 when every target answered (and, with --validate, every
// exposition parsed and every --require family was present); 1 otherwise.
// Exit-status rules apply to --once only: the polling mode is a monitor,
// so an unreachable target renders as DOWN and is retried with
// exponential backoff (0.5 s doubling to a 5 s cap) until it answers
// again — restarting a rank mid-watch resumes its row, and a transient
// dump-write failure warns instead of killing the session.
// The scrape path is deliberately dependency-free: a hand-rolled
// HTTP/1.0 GET over net::connect_to and a line-oriented parse of the
// text format — the same dialect tests/test_telemetry.cpp locks down.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cli.h"
#include "common/check.h"
#include "common/table.h"
#include "net/socket.h"

namespace {

struct Sample {
  std::string name;    // metric family name
  std::string labels;  // raw label block without braces ("" if none)
  double value = 0.0;
};

struct Scrape {
  std::string target;
  bool ok = false;        // connected and got a 200 with a body
  bool parse_ok = false;  // every non-comment line parsed
  std::string error;
  std::string body;  // raw exposition text
  double duration_ms = 0.0;  // connect -> body fully read
  std::vector<Sample> samples;
};

/// One HTTP/1.0 GET /metrics against "host:port". Returns the response
/// body (after the blank line); throws gcs::Error on connect/read
/// failure or a non-200 status.
std::string http_get_metrics(const std::string& target, int timeout_ms) {
  gcs::net::Address addr;
  addr.is_unix = false;
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    throw gcs::Error("gcs_stat: target '" + target + "' is not host:port");
  }
  addr.host = target.substr(0, colon);
  addr.port = std::stoi(target.substr(colon + 1));

  gcs::net::Socket sock = gcs::net::connect_to(addr, timeout_ms);
  const std::string request =
      "GET /metrics HTTP/1.0\r\nHost: " + target + "\r\n\r\n";
  sock.write_all(request.data(), request.size());

  // Read to EOF: the server closes after one response (HTTP/1.0).
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(sock.fd(), buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw gcs::Error("gcs_stat: read from " + target + " failed: " +
                       std::strerror(errno));
    }
    if (got == 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }

  const auto eol = response.find("\r\n");
  const std::string status =
      eol == std::string::npos ? response : response.substr(0, eol);
  if (status.find(" 200 ") == std::string::npos) {
    throw gcs::Error("gcs_stat: " + target + " answered '" + status + "'");
  }
  const auto blank = response.find("\r\n\r\n");
  if (blank == std::string::npos) {
    throw gcs::Error("gcs_stat: " + target + " sent no header terminator");
  }
  return response.substr(blank + 4);
}

/// Parses one exposition body into samples. Returns false if any
/// non-comment, non-blank line failed to parse (the samples that did
/// parse are still kept).
bool parse_exposition(const std::string& body, std::vector<Sample>* out) {
  bool all_ok = true;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;

    // "name{labels} value" or "name value".
    const auto space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      all_ok = false;
      continue;
    }
    Sample s;
    std::string key = line.substr(0, space);
    const std::string value_text = line.substr(space + 1);
    const auto brace = key.find('{');
    if (brace != std::string::npos) {
      if (key.back() != '}') {
        all_ok = false;
        continue;
      }
      s.labels = key.substr(brace + 1, key.size() - brace - 2);
      key = key.substr(0, brace);
    }
    s.name = key;
    try {
      std::size_t used = 0;
      s.value = std::stod(value_text, &used);
      if (used != value_text.size()) {
        all_ok = false;
        continue;
      }
    } catch (const std::exception&) {
      all_ok = false;
      continue;
    }
    out->push_back(std::move(s));
  }
  return all_ok;
}

/// Per-target reconnect state for the polling mode. A target that stops
/// answering is not scraped on every tick — consecutive failures double
/// the retry delay from 500 ms up to a 5 s cap, so a watch session over
/// a half-dead job does not spend its whole interval in connect
/// timeouts. Any successful scrape resets the backoff.
struct Backoff {
  int failures = 0;
  std::chrono::steady_clock::time_point next_attempt{};

  bool should_attempt(std::chrono::steady_clock::time_point now) const {
    return failures == 0 || now >= next_attempt;
  }
  void on_failure(std::chrono::steady_clock::time_point now) {
    constexpr int kBaseMs = 500;
    constexpr int kCapMs = 5000;
    const int shift = failures < 4 ? failures : 4;  // 500ms << 4 > cap
    const int delay_ms = std::min(kBaseMs << shift, kCapMs);
    ++failures;
    next_attempt = now + std::chrono::milliseconds(delay_ms);
  }
  void on_success() {
    failures = 0;
    next_attempt = {};
  }
};

Scrape scrape_target(const std::string& target, int timeout_ms) {
  Scrape s;
  s.target = target;
  const auto start = std::chrono::steady_clock::now();
  try {
    s.body = http_get_metrics(target, timeout_ms);
    s.ok = true;
    s.parse_ok = parse_exposition(s.body, &s.samples);
  } catch (const std::exception& e) {
    s.error = e.what();
  }
  s.duration_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return s;
}

/// Sum of every sample of `name` (all label combinations), or 0.
double sum_of(const Scrape& s, const std::string& name) {
  double total = 0.0;
  for (const auto& sample : s.samples) {
    if (sample.name == name) total += sample.value;
  }
  return total;
}

/// The single sample of `name` with an empty (or any) label block;
/// gauges and plain counters have exactly one.
double value_of(const Scrape& s, const std::string& name) {
  for (const auto& sample : s.samples) {
    if (sample.name == name && sample.labels.empty()) return sample.value;
  }
  return sum_of(s, name);
}

std::string fmt_mib(double bytes) {
  return gcs::format_fixed(bytes / (1024.0 * 1024.0), 2);
}

std::string fmt_count(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

void render_table(const std::vector<Scrape>& scrapes) {
  gcs::AsciiTable table({"target", "rounds", "enc MiB", "dec MiB", "sent MiB",
                         "recv MiB", "stale", "epoch", "world", "peer fail"});
  for (const auto& s : scrapes) {
    if (!s.ok) {
      table.add_row({s.target, "DOWN", "-", "-", "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({
        s.target,
        fmt_count(value_of(s, "gcs_pipeline_rounds_total")),
        fmt_mib(value_of(s, "gcs_codec_encode_bytes_total")),
        fmt_mib(value_of(s, "gcs_codec_decode_bytes_total")),
        fmt_mib(value_of(s, "gcs_net_sent_bytes_total")),
        fmt_mib(value_of(s, "gcs_net_recv_bytes_total")),
        fmt_count(value_of(s, "gcs_net_stale_frames_rejected_total")),
        fmt_count(value_of(s, "gcs_net_epoch")),
        fmt_count(value_of(s, "gcs_net_world_size")),
        fmt_count(value_of(s, "gcs_net_peer_failures_total")),
    });
  }
  std::cout << table.to_string() << "\n";
}

void print_usage() {
  std::cout <<
      "gcs_stat: scrape and render gcs telemetry endpoints\n"
      "  --targets=<h:p,...>  endpoints to scrape (required)\n"
      "  --interval-ms=<t>    polling period (default 1000)\n"
      "  --timeout-ms=<t>     per-scrape connect/read timeout (default 2000)\n"
      "  --once               scrape once and exit instead of polling\n"
      "  --validate           require every exposition to parse cleanly\n"
      "  --require=<m,...>    metric families that must be present (implies\n"
      "                       --validate semantics for the exit status)\n"
      "  --dump=<path>        write the raw exposition text of every target\n"
      "                       (concatenated; '# gcs_stat' provenance headers\n"
      "                       carry target, scrape duration and a dump\n"
      "                       sequence number)\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    gcs::CliFlags flags(argc, argv);
    if (flags.help_requested()) {
      print_usage();
      return 0;
    }
    const std::string targets_csv = flags.get_string("targets", "");
    if (targets_csv.empty()) {
      print_usage();
      std::cerr << "gcs_stat: --targets is required\n";
      return 1;
    }
    const std::vector<std::string> targets = gcs::split_csv(targets_csv);
    const int interval_ms =
        static_cast<int>(flags.get_int("interval-ms", 1000));
    const int timeout_ms = static_cast<int>(flags.get_int("timeout-ms", 2000));
    const bool once = flags.get_bool("once", false);
    const bool validate = flags.get_bool("validate", false);
    const std::vector<std::string> required =
        gcs::split_csv(flags.get_string("require", ""));
    const std::string dump_path = flags.get_string("dump", "");
    std::uint64_t dump_seq = 0;

    std::vector<Backoff> backoffs(targets.size());

    for (;;) {
      const auto now = std::chrono::steady_clock::now();
      std::vector<Scrape> scrapes;
      scrapes.reserve(targets.size());
      for (std::size_t i = 0; i < targets.size(); ++i) {
        // --once always attempts: a one-shot gate must report reality,
        // not a cached backoff verdict.
        if (!once && !backoffs[i].should_attempt(now)) {
          Scrape skipped;
          skipped.target = targets[i];
          skipped.error = "gcs_stat: " + targets[i] +
                          " down, backing off before reconnect";
          scrapes.push_back(std::move(skipped));
          continue;
        }
        Scrape s = scrape_target(targets[i], timeout_ms);
        if (s.ok) {
          backoffs[i].on_success();
        } else {
          backoffs[i].on_failure(now);
        }
        scrapes.push_back(std::move(s));
      }

      render_table(scrapes);
      for (const auto& s : scrapes) {
        if (!s.ok) std::cerr << "gcs_stat: " << s.error << "\n";
      }

      if (!dump_path.empty()) {
        // Provenance headers: which target each block came from, how long
        // the scrape took, and a monotonic sequence number so successive
        // dumps of a polling session are orderable after the fact.
        std::ofstream dump(dump_path, std::ios::trunc);
        dump << "# gcs_stat dump seq: " << dump_seq++ << "\n";
        for (const auto& s : scrapes) {
          char duration[32];
          std::snprintf(duration, sizeof(duration), "%.3f", s.duration_ms);
          dump << "# gcs_stat target: " << s.target << "\n"
               << "# gcs_stat scrape duration_ms: " << duration << "\n"
               << s.body;
        }
        if (!dump) {
          // Fatal only as a one-shot gate; a polling session keeps
          // watching (the disk filling up should not end the watch).
          std::cerr << "gcs_stat: failed to write " << dump_path << "\n";
          if (once) return 1;
        }
      }

      if (once) {
        bool ok = true;
        for (const auto& s : scrapes) {
          if (!s.ok) {
            ok = false;
            continue;
          }
          if (validate && !s.parse_ok) {
            std::cerr << "gcs_stat: " << s.target
                      << ": exposition did not parse cleanly\n";
            ok = false;
          }
          std::set<std::string> families;
          for (const auto& sample : s.samples) families.insert(sample.name);
          for (const auto& need : required) {
            // A histogram family exposes name_bucket/_sum/_count.
            if (families.count(need) == 0 &&
                families.count(need + "_bucket") == 0) {
              std::cerr << "gcs_stat: " << s.target << ": required family '"
                        << need << "' missing\n";
              ok = false;
            }
          }
        }
        return ok ? 0 : 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& e) {
    std::cerr << "gcs_stat: " << e.what() << "\n";
    return 1;
  }
}
