// gcs_top — cluster-wide live health dashboard over the /health plane.
//
// Where gcs_stat scrapes the raw Prometheus exposition, gcs_top asks the
// per-rank HealthMonitor the already-digested question: "are you OK?".
// Each telemetry-enabled worker (gcs_worker --health --stats-port=<p>)
// serves a one-line JSON health summary at GET /health; this tool polls
// N such endpoints and renders one row per rank: round rate, wire
// throughput, queue depth, health status/score, active anomalies and
// watchdog stalls. Unreachable ranks render as DOWN and keep being
// retried — a dead rank is a finding, not an error.
//
//   gcs_top --targets=127.0.0.1:9200,127.0.0.1:9201          # live table
//   gcs_top --targets=... --once                             # one scrape
//   gcs_top --targets=... --once
//           --expect=0:healthy,1:stalled                     # CI gate
//   gcs_top --targets=... --once --expect-anomaly=2:send_latency:24
//           --expect-clean=0:send_latency                    # detector gate
//
// Gating grammar (each flag takes a comma-separated clause list):
//   --expect=IDX:CLASS       CLASS one of ok|warn|degraded|stalled|down,
//                            or the rollups healthy (= ok|warn) and
//                            unhealthy (= degraded|stalled|down)
//   --expect-anomaly=IDX:SIGNAL[:MAXROUND]
//                            rank IDX must have >=1 detection of SIGNAL;
//                            with MAXROUND, the first detection must have
//                            landed at round <= MAXROUND (latency bound)
//   --expect-clean=IDX:SIGNAL
//                            rank IDX must have zero detections of SIGNAL
//
// Exit status with --once: 0 when every expectation held, 1 otherwise.
// Without expectations, --once exits 0 iff every target answered.
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/cli.h"
#include "common/check.h"
#include "common/json.h"
#include "common/table.h"
#include "net/socket.h"

namespace {

/// One anomaly entry as reported by /health.
struct Anomaly {
  std::string signal;
  int peer = -1;
  bool local = false;
  bool active = false;
  std::uint64_t count = 0;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

struct Health {
  std::string target;
  bool ok = false;  // connected, 200, JSON parsed
  std::string error;
  int rank = -1;
  std::string status;  // ok|warn|degraded|stalled
  double score = 0.0;
  std::uint64_t rounds_total = 0;
  double round_rate_hz = 0.0;
  double tx_bytes_per_s = 0.0;
  double rx_bytes_per_s = 0.0;
  std::int64_t queue_depth = 0;
  std::int64_t epoch = 0;
  std::int64_t world_size = 0;
  std::uint64_t stalls_total = 0;
  std::vector<std::string> active_stalls;  // "lane(peer N)"
  std::vector<Anomaly> anomalies;
};

/// One HTTP/1.0 GET /health against "host:port"; returns the body.
/// Throws gcs::Error on connect/read failure or non-200 status.
std::string http_get_health(const std::string& target, int timeout_ms) {
  gcs::net::Address addr;
  addr.is_unix = false;
  const auto colon = target.rfind(':');
  if (colon == std::string::npos) {
    throw gcs::Error("gcs_top: target '" + target + "' is not host:port");
  }
  addr.host = target.substr(0, colon);
  addr.port = std::stoi(target.substr(colon + 1));

  gcs::net::Socket sock = gcs::net::connect_to(addr, timeout_ms);
  const std::string request =
      "GET /health HTTP/1.0\r\nHost: " + target + "\r\n\r\n";
  sock.write_all(request.data(), request.size());

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(sock.fd(), buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw gcs::Error("gcs_top: read from " + target + " failed: " +
                       std::strerror(errno));
    }
    if (got == 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }

  const auto eol = response.find("\r\n");
  const std::string status =
      eol == std::string::npos ? response : response.substr(0, eol);
  if (status.find(" 200 ") == std::string::npos) {
    throw gcs::Error("gcs_top: " + target + " answered '" + status + "'");
  }
  const auto blank = response.find("\r\n\r\n");
  if (blank == std::string::npos) {
    throw gcs::Error("gcs_top: " + target + " sent no header terminator");
  }
  return response.substr(blank + 4);
}

Health scrape_health(const std::string& target, int timeout_ms) {
  Health h;
  h.target = target;
  try {
    const gcs::json::Value doc = gcs::json::parse(http_get_health(target,
                                                                  timeout_ms));
    if (!doc.is_object()) throw gcs::Error("health body is not an object");
    h.rank = static_cast<int>(doc.num_or("rank", -1));
    h.status = doc.str_or("status", "?");
    h.score = doc.num_or("score", 0.0);
    h.rounds_total = static_cast<std::uint64_t>(doc.num_or("rounds_total", 0));
    h.round_rate_hz = doc.num_or("round_rate_hz", 0.0);
    h.tx_bytes_per_s = doc.num_or("tx_bytes_per_s", 0.0);
    h.rx_bytes_per_s = doc.num_or("rx_bytes_per_s", 0.0);
    h.queue_depth = static_cast<std::int64_t>(doc.num_or("queue_depth", 0));
    h.epoch = static_cast<std::int64_t>(doc.num_or("epoch", 0));
    h.world_size = static_cast<std::int64_t>(doc.num_or("world_size", 0));
    if (const gcs::json::Value* wd = doc.find("watchdog")) {
      h.stalls_total =
          static_cast<std::uint64_t>(wd->num_or("stalls_total", 0));
      if (const gcs::json::Value* active = wd->find("active");
          active != nullptr && active->is_array()) {
        for (const auto& stall : active->items) {
          const int peer = static_cast<int>(stall.num_or("peer", -1));
          std::string desc = stall.str_or("lane", "?");
          if (peer >= 0) desc += "(peer " + std::to_string(peer) + ")";
          h.active_stalls.push_back(std::move(desc));
        }
      }
    }
    if (const gcs::json::Value* anomalies = doc.find("anomalies");
        anomalies != nullptr && anomalies->is_array()) {
      for (const auto& a : anomalies->items) {
        Anomaly entry;
        entry.signal = a.str_or("signal", "?");
        entry.peer = static_cast<int>(a.num_or("peer", -1));
        entry.local = a.find("local") != nullptr && a.find("local")->boolean;
        entry.active = a.find("active") != nullptr && a.find("active")->boolean;
        entry.count = static_cast<std::uint64_t>(a.num_or("count", 0));
        entry.first_round =
            static_cast<std::uint64_t>(a.num_or("first_round", 0));
        entry.last_round =
            static_cast<std::uint64_t>(a.num_or("last_round", 0));
        h.anomalies.push_back(std::move(entry));
      }
    }
    h.ok = true;
  } catch (const std::exception& e) {
    h.error = e.what();
  }
  return h;
}

std::string fmt_rate_mib(double bytes_per_s) {
  return gcs::format_fixed(bytes_per_s / (1024.0 * 1024.0), 2);
}

std::string fmt_hz(double hz) { return gcs::format_fixed(hz, 1); }

/// "send_latency(p2)x3* queue_wait x1" — '*' marks a currently-active
/// detection, the count is total detections so far.
std::string summarize_anomalies(const Health& h) {
  std::string out;
  for (const auto& a : h.anomalies) {
    if (a.count == 0) continue;
    if (!out.empty()) out += ' ';
    out += a.signal;
    if (a.peer >= 0) out += "(p" + std::to_string(a.peer) + ")";
    out += "x" + std::to_string(a.count);
    if (a.active) out += '*';
  }
  return out.empty() ? "-" : out;
}

std::string summarize_watchdog(const Health& h) {
  if (h.stalls_total == 0) return "-";
  std::string out = std::to_string(h.stalls_total);
  for (const auto& stall : h.active_stalls) out += " " + stall;
  return out;
}

void render_table(const std::vector<Health>& healths, bool clear_screen) {
  gcs::AsciiTable table({"rank", "target", "status", "score", "rounds",
                         "rate/s", "tx MiB/s", "rx MiB/s", "queue", "epoch",
                         "world", "anomalies", "watchdog"});
  for (std::size_t i = 0; i < healths.size(); ++i) {
    const Health& h = healths[i];
    if (!h.ok) {
      table.add_row({std::to_string(i), h.target, "DOWN", "-", "-", "-", "-",
                     "-", "-", "-", "-", "-", "-"});
      continue;
    }
    table.add_row({
        h.rank >= 0 ? std::to_string(h.rank) : std::to_string(i),
        h.target,
        h.status,
        gcs::format_fixed(h.score, 1),
        std::to_string(h.rounds_total),
        fmt_hz(h.round_rate_hz),
        fmt_rate_mib(h.tx_bytes_per_s),
        fmt_rate_mib(h.rx_bytes_per_s),
        std::to_string(h.queue_depth),
        std::to_string(h.epoch),
        std::to_string(h.world_size),
        summarize_anomalies(h),
        summarize_watchdog(h),
    });
  }
  if (clear_screen) std::cout << "\033[2J\033[H";
  std::cout << table.to_string() << std::flush;
}

/// One parsed --expect / --expect-anomaly / --expect-clean clause.
struct Expectation {
  enum class Kind { kStatus, kAnomaly, kClean } kind = Kind::kStatus;
  std::size_t index = 0;       // position in --targets
  std::string what;            // status class or signal name
  std::uint64_t max_round = 0; // kAnomaly: latency bound; 0 = unbounded
};

Expectation parse_expectation(const std::string& spec, Expectation::Kind kind,
                              const char* flag) {
  Expectation e;
  e.kind = kind;
  const auto first = spec.find(':');
  if (first == std::string::npos || first == 0) {
    throw gcs::Error(std::string("gcs_top: ") + flag + "='" + spec +
                     "' is not IDX:VALUE");
  }
  e.index = static_cast<std::size_t>(std::stoul(spec.substr(0, first)));
  std::string rest = spec.substr(first + 1);
  if (kind == Expectation::Kind::kAnomaly) {
    const auto second = rest.find(':');
    if (second != std::string::npos) {
      e.max_round = std::stoull(rest.substr(second + 1));
      rest = rest.substr(0, second);
    }
  }
  if (rest.empty()) {
    throw gcs::Error(std::string("gcs_top: ") + flag + "='" + spec +
                     "' names no value");
  }
  e.what = rest;
  return e;
}

/// True when the scraped status satisfies the expected class.
bool status_matches(const Health& h, const std::string& want) {
  const std::string got = h.ok ? h.status : "down";
  if (want == "healthy") return got == "ok" || got == "warn";
  if (want == "unhealthy") {
    return got == "degraded" || got == "stalled" || got == "down";
  }
  return got == want;
}

/// Evaluates one expectation, appending a human-readable failure line to
/// `failures` when it does not hold.
bool check_expectation(const Expectation& e, const std::vector<Health>& healths,
                       std::vector<std::string>* failures) {
  if (e.index >= healths.size()) {
    failures->push_back("expectation names rank index " +
                        std::to_string(e.index) + " but only " +
                        std::to_string(healths.size()) + " targets given");
    return false;
  }
  const Health& h = healths[e.index];
  const std::string who = "rank " + std::to_string(e.index) + " (" + h.target +
                          ")";
  switch (e.kind) {
    case Expectation::Kind::kStatus: {
      if (status_matches(h, e.what)) return true;
      failures->push_back(who + ": expected status '" + e.what + "', got '" +
                          (h.ok ? h.status : "down") + "'");
      return false;
    }
    case Expectation::Kind::kAnomaly: {
      if (!h.ok) {
        failures->push_back(who + ": expected anomaly '" + e.what +
                            "' but target is down");
        return false;
      }
      for (const auto& a : h.anomalies) {
        if (a.signal != e.what || a.count == 0) continue;
        if (e.max_round != 0 && a.first_round > e.max_round) {
          failures->push_back(who + ": anomaly '" + e.what +
                              "' first fired at round " +
                              std::to_string(a.first_round) +
                              ", bound was round " +
                              std::to_string(e.max_round));
          return false;
        }
        return true;
      }
      failures->push_back(who + ": expected anomaly '" + e.what +
                          "' never detected");
      return false;
    }
    case Expectation::Kind::kClean: {
      if (!h.ok) {
        failures->push_back(who + ": expected clean '" + e.what +
                            "' but target is down");
        return false;
      }
      for (const auto& a : h.anomalies) {
        if (a.signal == e.what && a.count > 0) {
          failures->push_back(who + ": expected zero '" + e.what +
                              "' detections, found " +
                              std::to_string(a.count));
          return false;
        }
      }
      return true;
    }
  }
  return false;  // unreachable
}

void print_usage() {
  std::cout <<
      "gcs_top: live cluster health dashboard over /health endpoints\n"
      "  --targets=<h:p,...>      endpoints to poll (required)\n"
      "  --interval-ms=<t>        polling period (default 1000)\n"
      "  --timeout-ms=<t>         per-scrape timeout (default 2000)\n"
      "  --once                   scrape once, evaluate gates, exit\n"
      "  --no-clear               do not clear the screen between refreshes\n"
      "  --expect=IDX:CLASS,...   gate: rank IDX status must match CLASS\n"
      "                           (ok|warn|degraded|stalled|down|healthy|\n"
      "                           unhealthy); comma-separated clause list\n"
      "  --expect-anomaly=IDX:SIGNAL[:MAXROUND]\n"
      "                           gate: rank IDX detected SIGNAL (first\n"
      "                           detection at or before round MAXROUND)\n"
      "  --expect-clean=IDX:SIGNAL\n"
      "                           gate: rank IDX has zero SIGNAL detections\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    gcs::CliFlags flags(argc, argv);
    if (flags.help_requested()) {
      print_usage();
      return 0;
    }
    const std::string targets_csv = flags.get_string("targets", "");
    if (targets_csv.empty()) {
      print_usage();
      std::cerr << "gcs_top: --targets is required\n";
      return 1;
    }
    const std::vector<std::string> targets = gcs::split_csv(targets_csv);
    const int interval_ms =
        static_cast<int>(flags.get_int("interval-ms", 1000));
    const int timeout_ms = static_cast<int>(flags.get_int("timeout-ms", 2000));
    const bool once = flags.get_bool("once", false);
    const bool no_clear = flags.get_bool("no-clear", false);

    std::vector<Expectation> expectations;
    for (const auto& spec : gcs::split_csv(flags.get_string("expect", ""))) {
      expectations.push_back(
          parse_expectation(spec, Expectation::Kind::kStatus, "--expect"));
    }
    for (const auto& spec :
         gcs::split_csv(flags.get_string("expect-anomaly", ""))) {
      expectations.push_back(parse_expectation(
          spec, Expectation::Kind::kAnomaly, "--expect-anomaly"));
    }
    for (const auto& spec :
         gcs::split_csv(flags.get_string("expect-clean", ""))) {
      expectations.push_back(
          parse_expectation(spec, Expectation::Kind::kClean, "--expect-clean"));
    }

    for (;;) {
      std::vector<Health> healths;
      healths.reserve(targets.size());
      for (const auto& target : targets) {
        healths.push_back(scrape_health(target, timeout_ms));
      }

      render_table(healths, /*clear_screen=*/!once && !no_clear);
      for (const auto& h : healths) {
        if (!h.ok) std::cerr << "gcs_top: " << h.error << "\n";
      }

      if (once) {
        bool ok = true;
        std::vector<std::string> failures;
        for (const auto& e : expectations) {
          if (!check_expectation(e, healths, &failures)) ok = false;
        }
        if (expectations.empty()) {
          for (const auto& h : healths) {
            if (!h.ok) ok = false;
          }
        }
        for (const auto& f : failures) {
          std::cerr << "gcs_top: GATE FAIL: " << f << "\n";
        }
        if (!expectations.empty()) {
          std::cout << (ok ? "gcs_top: all gates passed\n"
                           : "gcs_top: gates FAILED\n");
        }
        return ok ? 0 : 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  } catch (const std::exception& e) {
    std::cerr << "gcs_top: " << e.what() << "\n";
    return 1;
  }
}
