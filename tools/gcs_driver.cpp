// gcs_driver: the measurement & calibration driver (DESIGN.md
// "Measurement layer"; ROADMAP "multi-host measurement harness").
//
// Every headline number in this repo used to be a *charged* time from
// sim/cost_model.h. This driver runs the identical value path for real,
// traced span by span, and puts measured and charged side by side:
//
//   1. sweeps a list of factory specs (scheme x chunk/bucket/workers)
//      over a real execution backend, tracing every round's phases
//      (encode per worker, per-chunk collective send/recv, reduce,
//      decode) with measure::TraceRecorder;
//   2. probes the substrate's actual link (RTT, bandwidth) and its
//      n-to-1 incast penalty with measure::LinkProber — the measured
//      penalty replaces netsim's assumed constant;
//   3. fits the cost model's alpha-beta + per-scheme coefficients to the
//      measured rounds (measure::Calibrator) and reports, per scenario,
//      measured wall-clock next to the uncalibrated (paper-testbed) and
//      calibrated charges, per phase;
//   4. writes BENCH_measured_vs_charged.json (gated by bench_compare:
//      the charged columns are deterministic; "calibration_improves"
//      asserts the fit beats the uncalibrated model) and
//      TRACE_round_traces.json (the raw spans, uploaded by CI).
//
// Execution backends:
//   --fabric=threaded   (default) one thread per rank, in-process
//   --fabric=socket     one forked OS process per rank per round over
//                       Unix-domain sockets (loopback); rank 0 is traced
//   --rank=<r> --rendezvous=<addr>
//                       one rank of a multi-host sweep over a shared
//                       TCP/UDS mesh (the gcs_worker pattern): every
//                       host runs the identical command with its own
//                       --rank; rank 0 traces, calibrates and writes the
//                       artefacts.
//
// Exit code: 0 iff the calibrated model's mean absolute error against
// measured round time beats the uncalibrated model's (the acceptance
// claim), 2 on usage errors.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "comm/fabric.h"
#include "comm/group.h"
#include "common/cli.h"
#include "common/rng.h"
#include "core/aggregation_pipeline.h"
#include "core/factory.h"
#include "core/synthetic_grad.h"
#include "measure/calibrator.h"
#include "measure/link_prober.h"
#include "measure/trace.h"
#include "net/launcher.h"
#include "net/socket_fabric.h"
#include "sim/cost_model.h"
#include "telemetry/chrome_trace.h"
#include "tensor/layout.h"

namespace {

using namespace gcs;

struct DriverConfig {
  std::vector<std::string> schemes;
  int world = 4;
  int rounds = 3;  ///< round 0 is warmup (untimed) when rounds > 1
  std::size_t dim = std::size_t{1} << 16;
  std::uint64_t seed = 1234;
  std::string fabric = "threaded";  // threaded | socket
  std::string rendezvous;           // multi-host mode
  int rank = -1;                    // multi-host mode
  std::string out = ".";
};

/// The default sweep: all five schemes, plus chunked and worker-pool
/// variants — enough scenarios (and distinct scheme kinds) for the
/// calibrator's 3 + #kinds parameters, and the grid the committed
/// baseline gates.
std::vector<std::string> default_sweep() {
  return {
      "fp16",
      "fp16:chunk=16384",
      "fp16:workers=2",
      "topk:b=8",
      "topkc:b=8",
      "topkc:b=8:chunk=16384",
      "topkc:b=8:workers=2",
      "thc:q=4:b=4:sat:partial",
      "thc:q=4:b=4:sat:partial:chunk=16384",
      "powersgd:r=4",
  };
}

std::string kind_of(const std::string& spec) {
  return spec.substr(0, spec.find(':'));
}

/// Deterministic per-worker gradients: the one shared recipe every
/// protocol binary regenerates identically in every process.
std::vector<std::vector<float>> make_grads(const DriverConfig& config,
                                           std::uint64_t round) {
  return core::seeded_worker_grads(config.dim, config.world, config.seed,
                                   round);
}

struct ScenarioResult {
  std::string spec;
  measure::ScenarioSample sample;           ///< median timed round
  std::vector<measure::ScenarioSample> all; ///< every timed round (fit set)
  measure::RoundTrace trace;                ///< the median round's spans
  sim::RoundTime charged;                   ///< uncalibrated testbed charge
};

/// Builds the pipeline config for one spec on the chosen backend,
/// mirroring gcs_worker's contract: transport selection belongs to the
/// driver, not the spec.
core::PipelineConfig pipeline_config_for(const DriverConfig& config,
                                         const std::string& spec,
                                         const ModelLayout& layout,
                                         measure::TraceRecorder* trace) {
  core::PipelineConfig pc =
      core::parse_pipeline_config(spec, layout, config.world);
  if (pc.effective_backend() != core::PipelineBackend::kLocalReference) {
    throw Error(
        "gcs_driver: drop fabric=/fabric from --schemes — the execution "
        "backend is chosen by --fabric/--rank");
  }
  if (config.rank >= 0) {
    pc.backend = core::PipelineBackend::kLocalReference;  // aggregate_over
  } else if (config.fabric == "socket") {
    pc.backend = core::PipelineBackend::kSocketFabric;
  } else {
    pc.backend = core::PipelineBackend::kThreadedFabric;
  }
  pc.trace = trace;
  return pc;
}

/// Runs one spec for `rounds` rounds on the in-process backends and
/// returns its samples (median + all timed rounds). Used for both
/// --fabric=threaded and --fabric=socket (the pipeline forks per round).
ScenarioResult run_scenario(const DriverConfig& config,
                            const std::string& spec,
                            const ModelLayout& layout,
                            comm::Communicator* multihost_comm) {
  measure::TraceRecorder recorder;
  const bool trace_here = multihost_comm == nullptr ||
                          multihost_comm->rank() == 0;
  core::PipelineConfig pc = pipeline_config_for(
      config, spec, layout, trace_here ? &recorder : nullptr);
  core::AggregationPipeline pipeline(
      core::make_scheme_codec(spec, layout, config.world), pc);

  ScenarioResult result;
  result.spec = spec;
  std::vector<measure::RoundTrace> timed;
  std::vector<float> out(config.dim);
  for (int r = 0; r < config.rounds; ++r) {
    const auto grads = make_grads(config, static_cast<std::uint64_t>(r));
    std::vector<std::span<const float>> views;
    views.reserve(grads.size());
    for (const auto& g : grads) views.emplace_back(g.data(), g.size());
    const std::span<const std::span<const float>> grad_span(views);
    if (multihost_comm != nullptr) {
      pipeline.aggregate_over(*multihost_comm, grad_span, out,
                              static_cast<std::uint64_t>(r));
    } else {
      pipeline.aggregate(grad_span, out, static_cast<std::uint64_t>(r));
    }
    measure::RoundTrace trace = recorder.take(
        static_cast<std::uint64_t>(r), spec,
        multihost_comm != nullptr ? "multihost" : config.fabric);
    const bool warmup = config.rounds > 1 && r == 0;
    if (!warmup) timed.push_back(std::move(trace));
  }

  const std::string kind = kind_of(spec);
  for (const auto& t : timed) {
    result.all.push_back(measure::sample_from_trace(
        t, kind, config.dim, t.phase_count(measure::Phase::kStage)));
    result.all.back().label = spec;
  }
  // Median timed round (by wall clock) represents the scenario in the
  // report and the fit set stays per-round for degrees of freedom.
  std::vector<std::size_t> order(timed.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return timed[a].round_s() < timed[b].round_s();
  });
  const std::size_t mid = order.empty() ? 0 : order[order.size() / 2];
  if (!timed.empty()) {
    result.sample = result.all[mid];
    result.trace = std::move(timed[mid]);
  }

  // The uncalibrated charge: the paper-testbed model over the identical
  // spec, with zero training compute (the driver rounds run none).
  sim::WorkloadSpec workload;
  workload.name = "driver";
  workload.layout = layout;
  workload.fp32_compute_seconds = 0.0;
  const sim::CostModel cost(sim::CostConstants{}, netsim::NetworkModel{},
                            config.world);
  result.charged = cost.round_for_spec(workload, spec);
  return result;
}

struct ProbeResults {
  measure::LinkEstimate link;
  measure::IncastEstimate incast;
};

/// Probes over the threaded in-process fabric (SPMD across rank threads).
ProbeResults probe_threaded(int world) {
  ProbeResults probes;
  comm::Fabric fabric(world);
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    const auto link = measure::probe_link(comm, 0, 1 % world);
    const auto incast = measure::probe_incast(comm, 0);
    if (comm.rank() == 0) {
      probes.link = link;
      probes.incast = incast;
    }
  });
  return probes;
}

/// Probes over real loopback sockets: one thread per rank, each with its
/// own Unix-domain SocketFabric endpoint (the --fabric=socket substrate).
ProbeResults probe_sockets(int world) {
  ProbeResults probes;
  const std::string rendezvous = net::unique_unix_rendezvous();
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int rank = 0; rank < world; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        net::SocketFabricConfig fc;
        fc.rendezvous = rendezvous;
        fc.world_size = world;
        fc.rank = rank;
        net::SocketFabric fabric(fc);
        comm::Communicator comm(fabric, rank);
        const auto link = measure::probe_link(comm, 0, 1 % world);
        const auto incast = measure::probe_incast(comm, 0);
        if (rank == 0) {
          probes.link = link;
          probes.incast = incast;
        }
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return probes;
}

/// The full sweep + probes + calibration + artefacts on one process (or,
/// in multi-host mode, on every rank SPMD with rank 0 reporting).
/// Returns the process exit code.
int run_driver(const DriverConfig& config,
               comm::Communicator* multihost_comm) {
  const ModelLayout layout = make_transformer_like_layout(config.dim);
  const bool reporter = multihost_comm == nullptr ||
                        multihost_comm->rank() == 0;

  // ---- probes first: the link the sweep is about to use.
  ProbeResults probes;
  if (multihost_comm != nullptr) {
    probes.link = measure::probe_link(*multihost_comm, 0,
                                      1 % config.world);
    probes.incast = measure::probe_incast(*multihost_comm, 0);
  } else if (config.fabric == "socket") {
    probes = probe_sockets(config.world);
  } else {
    probes = probe_threaded(config.world);
  }
  const netsim::NetworkModel measured_net =
      measure::probed_network_model(probes.link, probes.incast);

  // ---- the sweep.
  std::vector<ScenarioResult> results;
  for (const auto& spec : config.schemes) {
    if (reporter) {
      std::cout << "  running " << spec << " (" << config.rounds
                << " rounds, d=" << config.dim << ", n=" << config.world
                << ") ..." << std::flush;
    }
    results.push_back(
        run_scenario(config, spec, layout, multihost_comm));
    if (reporter) {
      std::cout << " measured "
                << format_sig(results.back().sample.measured_round_s * 1e3,
                              3)
                << " ms vs charged "
                << format_sig(results.back().charged.total() * 1e3, 3)
                << " ms\n";
    }
  }
  if (!reporter) return 0;  // non-zero multi-host ranks only participate

  // ---- calibration. The reported parameters come from the all-sample
  // fit; the headline MAE is out-of-sample where the sweep allows it:
  // each scenario's median round is predicted by a model fitted on every
  // *other* scenario's samples (leave-one-scenario-out), so an overfit
  // calibrator cannot hide behind its own training data. Sweeps too thin
  // for LOO fall back to in-sample scoring, flagged in the artefact.
  measure::Calibrator calibrator;
  for (const auto& r : results) {
    for (const auto& s : r.all) calibrator.add(s);
  }
  const measure::CalibratedCostModel fitted = calibrator.fit();
  std::vector<double> cal_pred(results.size(), 0.0);
  bool loo = true;
  for (std::size_t i = 0; i < results.size() && loo; ++i) {
    measure::Calibrator held_out;
    for (std::size_t j = 0; j < results.size(); ++j) {
      if (j == i) continue;
      for (const auto& s : results[j].all) held_out.add(s);
    }
    try {
      cal_pred[i] =
          held_out.fit().charged_round_s(results[i].sample);
    } catch (const Error&) {
      loo = false;  // underdetermined without this scenario
    }
  }
  if (!loo) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      cal_pred[i] = fitted.charged_round_s(results[i].sample);
    }
  }
  double mae_uncal = 0.0, mae_cal = 0.0, mean_measured = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double measured = results[i].sample.measured_round_s;
    mae_uncal += std::abs(results[i].charged.total() - measured);
    mae_cal += std::abs(cal_pred[i] - measured);
    mean_measured += measured;
  }
  mae_uncal /= static_cast<double>(results.size());
  mae_cal /= static_cast<double>(results.size());
  mean_measured /= static_cast<double>(results.size());
  // Reference floor: the best feature-blind predictor. Reported so the
  // artefact shows how much of the fit is structure, not just scale.
  double mae_constant = 0.0;
  for (const auto& r : results) {
    mae_constant += std::abs(mean_measured - r.sample.measured_round_s);
  }
  mae_constant /= static_cast<double>(results.size());
  const bool improves = mae_cal < mae_uncal;

  // ---- report. Charged columns are deterministic (gated); measured
  // columns use gate-neutral *_us names (machine-dependent, reported but
  // untracked by bench_compare's direction classifier). The calibrated
  // column is the held-out prediction from the loop above.
  bench::BenchJson json("measured_vs_charged");
  json.set("meta", "description",
           "per-phase measured wall-clock vs cost-model charge");
  json.set("meta", "backend",
           multihost_comm != nullptr ? "multihost" : config.fabric);
  json.set("meta", "world", static_cast<double>(config.world));
  json.set("meta", "dim", static_cast<double>(config.dim));
  AsciiTable table({"spec", "measured ms", "charged ms", "calibrated ms",
                    "encode us", "wire us", "decode us", "msgs"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& s = r.sample;
    const double calibrated_s = cal_pred[i];
    json.set(r.spec, "charged_round_ms", r.charged.total() * 1e3);
    json.set(r.spec, "charged_compress_ms", r.charged.compress_s * 1e3);
    json.set(r.spec, "charged_comm_ms", r.charged.comm_s * 1e3);
    json.set(r.spec, "charged_fixed_ms", r.charged.fixed_s * 1e3);
    json.set(r.spec, "plan_messages", s.messages);
    json.set(r.spec, "plan_wire_bytes", s.wire_bytes);
    json.set(r.spec, "measured_round_us", s.measured_round_s * 1e6);
    json.set(r.spec, "measured_encode_us", s.measured_encode_s * 1e6);
    json.set(r.spec, "measured_comm_us", s.measured_comm_s * 1e6);
    json.set(r.spec, "measured_decode_us", s.measured_decode_s * 1e6);
    json.set(r.spec, "calibrated_round_us", calibrated_s * 1e6);
    json.set(r.spec, "uncal_abs_err_us",
             std::abs(r.charged.total() - s.measured_round_s) * 1e6);
    json.set(r.spec, "cal_abs_err_us",
             std::abs(calibrated_s - s.measured_round_s) * 1e6);
    table.add_row({r.spec, format_sig(s.measured_round_s * 1e3, 3),
                   format_sig(r.charged.total() * 1e3, 3),
                   format_sig(calibrated_s * 1e3, 3),
                   format_sig(s.measured_encode_s * 1e6, 3),
                   format_sig(s.measured_comm_s * 1e6, 3),
                   format_sig(s.measured_decode_s * 1e6, 3),
                   format_sig(s.messages, 3)});
  }
  json.set("probe", "link_rtt_us", probes.link.rtt_s * 1e6);
  json.set("probe", "link_bandwidth_gbytes",
           probes.link.bandwidth_bytes_per_sec / 1e9);
  json.set("probe", "incast_penalty", probes.incast.penalty);
  json.set("probe", "incast_senders",
           static_cast<double>(probes.incast.senders));
  // The measured penalty, consumed: PS charge under the probed model.
  {
    const double payload =
        static_cast<double>(config.dim) * 2.0;  // an FP16 payload
    json.set("probe", "ps_charge_measured_incast_us",
             measured_net.ps_aggregate_time(config.world, payload) * 1e6);
  }
  json.set("calibration", "scenarios",
           static_cast<double>(results.size()));
  json.set("calibration", "fit_samples",
           static_cast<double>(calibrator.size()));
  json.set("calibration", "calibration_improves", improves ? 1.0 : 0.0);
  json.set("calibration", "eval",
           loo ? std::string("leave_one_scenario_out")
               : std::string("in_sample"));
  json.set("calibration", "mae_uncalibrated_us", mae_uncal * 1e6);
  json.set("calibration", "mae_calibrated_us", mae_cal * 1e6);
  json.set("calibration", "mae_constant_us", mae_constant * 1e6);
  json.set("calibration", "alpha_us", fitted.alpha_s() * 1e6);
  json.set("calibration", "beta_us_per_mb",
           fitted.beta_s_per_byte() * 1e12);
  json.set("calibration", "fixed_us", fitted.fixed_s() * 1e6);
  for (const auto& kind : fitted.scheme_kinds()) {
    json.set("calibration", "gamma_ps_per_coord_" + kind,
             fitted.compute_per_coord(kind) * 1e12);
  }

  std::cout << '\n' << table.to_string() << '\n';
  std::cout << "link: rtt "
            << format_sig(probes.link.rtt_s * 1e6, 3) << " us, bandwidth "
            << format_sig(probes.link.bandwidth_bytes_per_sec / 1e9, 3)
            << " GB/s; incast penalty (" << probes.incast.senders
            << " senders): " << format_sig(probes.incast.penalty, 3)
            << " (measured, replaces netsim's assumed "
            << format_sig(netsim::incast_penalty(probes.incast.senders), 3)
            << ")\n";
  std::cout << "calibration ("
            << (loo ? "leave-one-scenario-out" : "in-sample")
            << "): MAE " << format_sig(mae_uncal * 1e6, 3)
            << " us (uncalibrated) -> " << format_sig(mae_cal * 1e6, 3)
            << " us (constant floor "
            << format_sig(mae_constant * 1e6, 3) << " us; fitted: alpha "
            << format_sig(fitted.alpha_s() * 1e6, 3) << " us/msg, beta "
            << format_sig(fitted.beta_s_per_byte() * 1e9, 3)
            << " ns/byte)\n";
  json.write(config.out);

  // The raw spans, one trace per scenario's median round (CI uploads
  // this next to the bench artefact).
  std::vector<measure::RoundTrace> traces;
  for (auto& r : results) traces.push_back(std::move(r.trace));
  const std::string trace_path = config.out + "/TRACE_round_traces.json";
  std::ofstream trace_out(trace_path);
  if (trace_out) {
    trace_out << measure::traces_to_json(traces);
    std::cout << "(traces written to " << trace_path << ")\n";
  } else {
    std::cerr << "warning: cannot write " << trace_path << '\n';
  }
  // The same spans on a chrome://tracing / Perfetto timeline.
  const std::string chrome_path =
      config.out + "/TRACE_round_traces.chrome.json";
  std::ofstream chrome_out(chrome_path);
  if (chrome_out) {
    chrome_out << telemetry::chrome_trace_json(traces);
    std::cout << "(chrome trace written to " << chrome_path << ")\n";
  } else {
    std::cerr << "warning: cannot write " << chrome_path << '\n';
  }

  if (!improves) {
    std::cerr << "gcs_driver: calibrated model did NOT beat the "
                 "uncalibrated charge — measurement noise or a fit bug\n";
    return 1;
  }
  return 0;
}

int run_multihost(const DriverConfig& config) {
  net::SocketFabricConfig fc;
  fc.rendezvous = config.rendezvous;
  fc.world_size = config.world;
  fc.rank = config.rank;
  net::SocketFabric fabric(fc);
  comm::Communicator comm(fabric, config.rank);
  return run_driver(config, &comm);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    CliFlags flags(argc, argv);
    if (flags.help_requested()) {
      std::cout
          << "gcs_driver — measured-vs-charged sweep + calibration\n"
             "  --schemes=<s1,s2,..>  factory specs to sweep (default: a\n"
             "                        10-scenario grid over all 5 schemes)\n"
             "  --fabric=<threaded|socket>\n"
             "                        execution backend (default threaded;\n"
             "                        socket forks one process per rank\n"
             "                        per round over Unix sockets)\n"
             "  --rank=<r> --rendezvous=<addr>\n"
             "                        multi-host mode: one rank per host\n"
             "                        over a shared TCP/UDS mesh; all\n"
             "                        hosts pass identical other flags\n"
             "  --world=<n>           world size (default 4)\n"
             "  --rounds=<k>          rounds per scenario; round 0 is\n"
             "                        warmup (default 3)\n"
             "  --dim=<d>             gradient dimension (default 65536)\n"
             "  --seed=<s>            gradient seed (default 1234)\n"
             "  --out=<dir>           artefact directory (default .)\n";
      return 0;
    }
    DriverConfig config;
    const std::string schemes = flags.get_string("schemes", "");
    config.schemes = schemes.empty() ? default_sweep() : split_csv(schemes);
    config.world = static_cast<int>(flags.get_int("world", config.world));
    config.rounds =
        static_cast<int>(flags.get_int("rounds", config.rounds));
    config.dim = static_cast<std::size_t>(
        flags.get_int("dim", static_cast<std::int64_t>(config.dim)));
    config.seed = static_cast<std::uint64_t>(
        flags.get_int("seed", static_cast<std::int64_t>(config.seed)));
    config.fabric = flags.get_string("fabric", config.fabric);
    config.rendezvous = flags.get_string("rendezvous", "");
    config.rank = static_cast<int>(flags.get_int("rank", -1));
    config.out = flags.get_string("out", config.out);
    if (config.world < 2) {
      std::cerr << "gcs_driver: --world must be >= 2\n";
      return 2;
    }
    if (config.rounds < 1) {
      std::cerr << "gcs_driver: --rounds must be >= 1\n";
      return 2;
    }
    if (config.fabric != "threaded" && config.fabric != "socket") {
      std::cerr << "gcs_driver: --fabric expects threaded or socket\n";
      return 2;
    }
    if (config.rank >= 0 && config.rendezvous.empty()) {
      std::cerr << "gcs_driver: --rank mode needs --rendezvous=<addr>\n";
      return 2;
    }
    if (config.rank >= 0) return run_multihost(config);
    return run_driver(config, nullptr);
  } catch (const std::exception& e) {
    std::cerr << "gcs_driver: " << e.what() << '\n';
    return 1;
  }
}
