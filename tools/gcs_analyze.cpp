// gcs_analyze — the causal profiler's offline half: merge per-rank round
// traces onto one clock-aligned timeline, walk each round's critical
// path, and name the straggler.
//
// Input files are whatever the runtime wrote: extended rank-trace JSON
// (gcs_worker --trace, {"rank","clock","traces"}), legacy {"traces"}
// documents, or flight-recorder post-mortem dumps ({"flight_recorder"}).
// The merge maps every span through its rank's ClockModel, pairs sends
// with recvs into flows, and repairs residual clock error so no effect
// precedes its cause (measure/trace_merge.h).
//
//   gcs_analyze /tmp/t.rank*.json --out=/tmp/analysis
//   gcs_analyze dumps/gcs_flight.rank*.json        # post-mortem triage
//   gcs_analyze t.rank*.json --gate \
//       --require=straggler=2,share>=0.5,flows>=4  # CI gate
//
// Artefacts (under --out, default "."):
//   gcs_merged.chrome.json    flow-annotated merged Chrome trace — one
//                             pid per rank, "s"/"f" arrows per wire hop
//   BENCH_critical_path.json  per-round + total report in the bench
//                             dialect tools/bench_compare.cpp consumes
//
// Exit status: 0 on success; 1 when --gate or a --require clause fails;
// 2 on usage errors. --gate fails on residual causality violations, on
// a flow-less merge, and on any rank that never appears on a flow in
// both directions (a silent rank is a lie in a collective).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/table.h"
#include "measure/critical_path.h"
#include "measure/trace_merge.h"
#include "telemetry/chrome_trace.h"

namespace {

using gcs::measure::AnalysisSummary;
using gcs::measure::CostBucket;
using gcs::measure::kCostBuckets;
using gcs::measure::MergeResult;
using gcs::measure::RankTrace;
using gcs::measure::RoundReport;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw gcs::Error("gcs_analyze: cannot read " + path);
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

std::string fmt_ms(double seconds) {
  return gcs::format_fixed(seconds * 1e3, 3);
}

std::string fmt_share(double share) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", share * 100.0);
  return buf;
}

/// Ordered (sender rank -> receiver rank) pairs covered by flows.
std::set<std::pair<int, int>> flow_pairs(const MergeResult& merged) {
  std::set<std::pair<int, int>> pairs;
  for (const auto& round : merged.rounds) {
    for (const auto& flow : round.flows) {
      const auto& send =
          round.spans[static_cast<std::size_t>(flow.send_index)];
      const auto& recv =
          round.spans[static_cast<std::size_t>(flow.recv_index)];
      pairs.emplace(send.rank, recv.rank);
    }
  }
  return pairs;
}

void print_report(const MergeResult& merged, const AnalysisSummary& summary) {
  std::cout << "Merged " << merged.ranks.size() << " rank(s), "
            << merged.rounds.size() << " round(s), " << merged.flow_count
            << " wire flow(s)\n";
  std::cout << "Causality: " << merged.violations_before
            << " violation(s) before repair (max "
            << gcs::format_fixed(merged.max_violation_before_s * 1e6, 1)
            << " us), " << merged.violations_after << " after (max "
            << gcs::format_fixed(merged.max_violation_after_s * 1e6, 1)
            << " us)\n";
  for (std::size_t i = 0; i < merged.ranks.size(); ++i) {
    if (merged.shift_s[i] != 0.0) {
      std::cout << "  repair shifted rank " << merged.ranks[i] << " by "
                << gcs::format_fixed(merged.shift_s[i] * 1e6, 1) << " us\n";
    }
  }
  std::cout << '\n';

  gcs::AsciiTable rounds({"round", "makespan ms", "path ms", "compute ms",
                          "wire ms", "incast ms", "stall ms", "straggler",
                          "share"});
  for (const RoundReport& r : summary.rounds) {
    rounds.add_row({std::to_string(r.round), fmt_ms(r.makespan_s),
                    fmt_ms(r.critical_path_s),
                    fmt_ms(r.bucket_s[static_cast<std::size_t>(
                        CostBucket::kCompute)]),
                    fmt_ms(r.bucket_s[static_cast<std::size_t>(
                        CostBucket::kWire)]),
                    fmt_ms(r.bucket_s[static_cast<std::size_t>(
                        CostBucket::kIncastWait)]),
                    fmt_ms(r.bucket_s[static_cast<std::size_t>(
                        CostBucket::kStall)]),
                    std::to_string(r.straggler), fmt_share(r.straggler_share)});
  }
  std::cout << rounds.to_string() << '\n';

  gcs::AsciiTable ranks({"rank", "attributed ms", "slack ms (total)"});
  for (std::size_t i = 0; i < summary.ranks.size(); ++i) {
    double slack = 0.0;
    for (const RoundReport& r : summary.rounds) {
      if (i < r.rank_slack_s.size()) slack += r.rank_slack_s[i];
    }
    ranks.add_row({std::to_string(summary.ranks[i]),
                   fmt_ms(summary.rank_attributed_s[i]), fmt_ms(slack)});
  }
  std::cout << ranks.to_string() << '\n';

  std::cout << "Critical path total: " << fmt_ms(summary.critical_path_s)
            << " ms; straggler: rank " << summary.straggler << " ("
            << fmt_share(summary.straggler_share) << " of path time)\n";
}

/// BENCH_critical_path.json in the bench dialect (flat rows keyed by
/// label) so bench_compare and the driver's artefact tooling read it
/// unchanged.
void write_bench_json(const std::string& dir, const MergeResult& merged,
                      const AnalysisSummary& summary) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"critical_path\",\n  \"rows\": [\n";
  auto row_common = [&os](const char* label) {
    os << "    {\"label\": \"" << label << "\"";
  };
  row_common("merge");
  os << ", \"ranks\": " << merged.ranks.size()
     << ", \"rounds\": " << merged.rounds.size()
     << ", \"flows\": " << merged.flow_count
     << ", \"violations_before\": " << merged.violations_before
     << ", \"violations_after\": " << merged.violations_after
     << ", \"max_violation_after_us\": "
     << merged.max_violation_after_s * 1e6 << "},\n";
  for (const RoundReport& r : summary.rounds) {
    os << "    {\"label\": \"round " << r.round << "\", \"round\": "
       << r.round << ", \"makespan_ms\": " << r.makespan_s * 1e3
       << ", \"path_ms\": " << r.critical_path_s * 1e3;
    for (std::size_t b = 0; b < kCostBuckets; ++b) {
      os << ", \"" << gcs::measure::bucket_name(static_cast<CostBucket>(b))
         << "_ms\": " << r.bucket_s[b] * 1e3;
    }
    os << ", \"straggler\": " << r.straggler
       << ", \"straggler_share\": " << r.straggler_share << "},\n";
  }
  row_common("total");
  os << ", \"path_ms\": " << summary.critical_path_s * 1e3;
  for (std::size_t b = 0; b < kCostBuckets; ++b) {
    os << ", \"" << gcs::measure::bucket_name(static_cast<CostBucket>(b))
       << "_ms\": " << summary.bucket_s[b] * 1e3;
  }
  os << ", \"straggler\": " << summary.straggler
     << ", \"straggler_share\": " << summary.straggler_share << "}\n  ]\n}\n";

  const std::string path = dir + "/BENCH_critical_path.json";
  std::ofstream out(path);
  if (!out) throw gcs::Error("gcs_analyze: cannot write " + path);
  out << os.str();
  std::cout << "(report written to " << path << ")\n";
}

void print_usage() {
  std::cout <<
      "gcs_analyze: merge per-rank traces, find the critical path\n"
      "  gcs_analyze <trace.json...>   rank-trace files (gcs_worker\n"
      "                                --trace output) and/or\n"
      "                                flight-recorder dumps\n"
      "  --out=<dir>          artefact directory (default .)\n"
      "  --no-chrome          skip the merged Chrome trace artefact\n"
      "  --no-repair          report raw alignment, do not shift ranks\n"
      "  --gate               exit 1 on residual causality violations,\n"
      "                       a flow-less merge, or a rank with no flows\n"
      "  --require=<clauses>  comma-separated extra gates:\n"
      "                         straggler=<r>   summary straggler is r\n"
      "                         share>=<f>      straggler share >= f\n"
      "                         flows>=<n>      at least n wire flows\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    gcs::CliFlags flags(argc, argv);
    if (flags.help_requested()) {
      print_usage();
      return 0;
    }
    const std::vector<std::string>& files = flags.positional();
    if (files.empty()) {
      print_usage();
      std::cerr << "gcs_analyze: no input files\n";
      return 2;
    }

    std::vector<RankTrace> rank_traces;
    for (const std::string& path : files) {
      RankTrace rt = gcs::measure::parse_rank_trace_json(read_file(path));
      rt.source = path;
      if (!rt.dump_reason.empty()) {
        std::cout << "loaded flight dump " << path << " (rank " << rt.rank
                  << ", reason: " << rt.dump_reason << ")\n";
      }
      rank_traces.push_back(std::move(rt));
    }

    gcs::measure::MergeOptions options;
    options.repair_causality = !flags.get_bool("no-repair", false);
    const MergeResult merged =
        gcs::measure::merge_rank_traces(rank_traces, options);
    const AnalysisSummary summary = gcs::measure::analyze(merged);
    print_report(merged, summary);

    const std::string out_dir = flags.get_string("out", ".");
    if (!flags.get_bool("no-chrome", false)) {
      const std::string chrome_path = out_dir + "/gcs_merged.chrome.json";
      std::ofstream chrome(chrome_path);
      if (!chrome) {
        throw gcs::Error("gcs_analyze: cannot write " + chrome_path);
      }
      chrome << gcs::telemetry::merged_chrome_trace_json(merged);
      std::cout << "(merged Chrome trace written to " << chrome_path
                << ")\n";
    }
    write_bench_json(out_dir, merged, summary);

    bool ok = true;
    if (flags.get_bool("gate", false)) {
      if (merged.violations_after > 0) {
        std::cerr << "GATE: " << merged.violations_after
                  << " residual causality violation(s) after repair\n";
        ok = false;
      }
      if (merged.flow_count == 0) {
        std::cerr << "GATE: no wire flows were paired\n";
        ok = false;
      }
      const auto pairs = flow_pairs(merged);
      for (int rank : merged.ranks) {
        bool sends = false;
        bool recvs = false;
        for (const auto& [src, dst] : pairs) {
          sends |= src == rank;
          recvs |= dst == rank;
        }
        if (!sends || !recvs) {
          std::cerr << "GATE: rank " << rank << " has no "
                    << (sends ? "inbound" : "outbound") << " flow\n";
          ok = false;
        }
      }
    }
    for (const std::string& clause :
         gcs::split_csv(flags.get_string("require", ""))) {
      if (clause.rfind("straggler=", 0) == 0) {
        const int want = std::stoi(clause.substr(10));
        if (summary.straggler != want) {
          std::cerr << "REQUIRE: straggler is rank " << summary.straggler
                    << ", wanted rank " << want << "\n";
          ok = false;
        }
      } else if (clause.rfind("share>=", 0) == 0) {
        const double want = std::stod(clause.substr(7));
        if (summary.straggler_share < want) {
          std::cerr << "REQUIRE: straggler share "
                    << gcs::format_fixed(summary.straggler_share, 3)
                    << " < " << gcs::format_fixed(want, 3) << "\n";
          ok = false;
        }
      } else if (clause.rfind("flows>=", 0) == 0) {
        const auto want = static_cast<std::size_t>(std::stoll(clause.substr(7)));
        if (merged.flow_count < want) {
          std::cerr << "REQUIRE: " << merged.flow_count << " flow(s) < "
                    << want << "\n";
          ok = false;
        }
      } else {
        std::cerr << "gcs_analyze: unknown --require clause '" << clause
                  << "'\n";
        return 2;
      }
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "gcs_analyze: " << e.what() << '\n';
    return 1;
  }
}
