// bench_compare: the perf-trajectory gate (ROADMAP "Perf trajectory
// tracking").
//
// Compares a freshly produced BENCH_<name>.json against the committed
// baseline under bench/baselines/ and fails (exit 1) when a tracked
// metric regresses by more than the tolerance (default 10%). Benches
// charge time analytically (sim/cost_model.h), so the numbers are
// deterministic across machines — a regression here is a real change in
// the modeled system, not CI noise.
//
// Metric direction is inferred from the key (checked in this order):
//   higher-is-better: rounds_per_second, speedup, hidden, saved, faster,
//                     identical, plus any --higher=<k1,k2,...> keys
//   lower-is-better:  keys containing "ms", "seconds" or ending in "_s",
//                     plus any --lower=<...> keys
// Unclassified numeric metrics are reported but not gated. A row or
// tracked metric present in the baseline but missing from the current
// file is itself a regression (coverage must not silently shrink).
// Metrics only the current file carries are tolerated (new coverage).
//
// A gate that can never fire is a misconfiguration, not a pass: a
// baseline with zero rows (e.g. an accidentally empty or truncated
// file), or whose rows track zero metrics, exits 2 loudly instead of
// reporting "0 regressions".
//
// Usage:
//   bench_compare <baseline.json> <current.json>
//       [--tolerance=0.10] [--higher=k1,k2] [--lower=k3]
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/cli.h"

namespace {

// ----------------------------------------------------------- JSON subset
// Parses exactly the dialect bench_util.h's BenchJson writes: one object
// with "bench" (string) and "rows" (array of flat objects whose values
// are strings, numbers or null). Anything else is a parse error.

struct JsonValue {
  enum class Kind { kString, kNumber, kNull } kind = Kind::kNull;
  std::string text;
  double number = 0.0;
};

struct BenchRow {
  std::string label;
  std::vector<std::pair<std::string, JsonValue>> metrics;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : metrics) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string text) : text_(std::move(text)) {}

  std::vector<BenchRow> parse_bench() {
    std::vector<BenchRow> rows;
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "rows") {
        rows = parse_rows();
      } else {
        (void)parse_value();  // "bench" name and future metadata
      }
    }
    return rows;
  }

 private:
  std::vector<BenchRow> parse_rows() {
    std::vector<BenchRow> rows;
    expect('[');
    if (try_consume(']')) return rows;
    do {
      rows.push_back(parse_row());
    } while (try_consume(','));
    expect(']');
    return rows;
  }

  BenchRow parse_row() {
    BenchRow row;
    expect('{');
    bool first = true;
    while (!try_consume('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      JsonValue value = parse_value();
      if (key == "label" && value.kind == JsonValue::Kind::kString) {
        row.label = value.text;
      } else {
        row.metrics.emplace_back(key, std::move(value));
      }
    }
    return row;
  }

  JsonValue parse_value() {
    skip_ws();
    JsonValue v;
    if (peek() == '"') {
      v.kind = JsonValue::Kind::kString;
      v.text = parse_string();
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double number = std::strtod(begin, &end);
    if (end == begin) fail("expected a JSON value");
    pos_ += static_cast<std::size_t>(end - begin);
    v.kind = JsonValue::Kind::kNumber;
    v.number = number;
    return v;
  }

  std::string parse_string() {
    if (peek() != '"') fail("expected a string");
    ++pos_;
    std::string out;
    // No skip_ws in here: whitespace inside a string literal is content.
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case 'u': {
            // BenchJson only emits \u00XX control escapes.
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            const std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            out.push_back(static_cast<char>(
                std::strtol(hex.c_str(), nullptr, 16)));
            break;
          }
          default: fail("unsupported escape");
        }
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw gcs::Error("bench_compare: JSON parse error at byte " +
                     std::to_string(pos_) + ": " + what);
  }

  std::string text_;
  std::size_t pos_ = 0;
};

std::vector<BenchRow> load_bench(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw gcs::Error("bench_compare: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Parser(buffer.str()).parse_bench();
}

// ------------------------------------------------------- metric policy

enum class Direction { kHigherIsBetter, kLowerIsBetter, kUntracked };

bool contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

Direction classify(const std::string& key,
                   const std::vector<std::string>& higher,
                   const std::vector<std::string>& lower) {
  for (const auto& k : higher) {
    if (key == k) return Direction::kHigherIsBetter;
  }
  for (const auto& k : lower) {
    if (key == k) return Direction::kLowerIsBetter;
  }
  if (contains(key, "rounds_per_second") || contains(key, "speedup") ||
      contains(key, "hidden") || contains(key, "saved") ||
      contains(key, "faster") || contains(key, "identical")) {
    return Direction::kHigherIsBetter;
  }
  if (contains(key, "ms") || contains(key, "seconds") ||
      (key.size() >= 2 && key.compare(key.size() - 2, 2, "_s") == 0)) {
    return Direction::kLowerIsBetter;
  }
  return Direction::kUntracked;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    gcs::CliFlags flags(argc, argv);
    if (flags.help_requested() || flags.positional().size() != 2) {
      std::cout << "usage: bench_compare <baseline.json> <current.json>"
                   " [--tolerance=0.10] [--higher=k1,k2] [--lower=k3]\n";
      return flags.help_requested() ? 0 : 2;
    }
    const std::string baseline_path = flags.positional()[0];
    const std::string current_path = flags.positional()[1];
    const double tolerance = flags.get_double("tolerance", 0.10);
    const auto higher = gcs::split_csv(flags.get_string("higher", ""));
    const auto lower = gcs::split_csv(flags.get_string("lower", ""));

    const auto baseline = load_bench(baseline_path);
    const auto current = load_bench(current_path);
    if (baseline.empty()) {
      throw gcs::Error("bench_compare: baseline " + baseline_path +
                       " has no rows — an empty gate passes everything; "
                       "regenerate or re-commit the baseline");
    }

    int regressions = 0;
    int tracked = 0;
    for (const auto& base_row : baseline) {
      const BenchRow* cur_row = nullptr;
      for (const auto& r : current) {
        if (r.label == base_row.label) {
          cur_row = &r;
          break;
        }
      }
      if (cur_row == nullptr) {
        std::cout << "REGRESSION  row '" << base_row.label
                  << "' missing from " << current_path << '\n';
        ++regressions;
        continue;
      }
      for (const auto& [key, base_value] : base_row.metrics) {
        if (base_value.kind != JsonValue::Kind::kNumber) continue;
        const Direction dir = classify(key, higher, lower);
        if (dir == Direction::kUntracked) continue;
        ++tracked;
        const JsonValue* cur_value = cur_row->find(key);
        if (cur_value == nullptr ||
            cur_value->kind != JsonValue::Kind::kNumber) {
          std::cout << "REGRESSION  " << base_row.label << " / " << key
                    << ": missing from current run\n";
          ++regressions;
          continue;
        }
        const double b = base_value.number;
        const double c = cur_value->number;
        bool bad = false;
        if (b != 0.0) {
          const double ratio = c / b;
          bad = dir == Direction::kHigherIsBetter
                    ? ratio < 1.0 - tolerance
                    : ratio > 1.0 + tolerance;
        } else {
          // A zero baseline can only regress in the lower-is-better
          // direction (cost appearing where there was none).
          bad = dir == Direction::kLowerIsBetter && c > 0.0;
        }
        if (bad) {
          std::cout << "REGRESSION  " << base_row.label << " / " << key
                    << ": " << b << " -> " << c << " ("
                    << (dir == Direction::kHigherIsBetter ? "want >= "
                                                          : "want <= ")
                    << (dir == Direction::kHigherIsBetter
                            ? b * (1.0 - tolerance)
                            : b * (1.0 + tolerance))
                    << ")\n";
          ++regressions;
        }
      }
    }
    // (regressions from whole-missing rows count even when no metric got
    // as far as classification — those must stay exit 1, not exit 2.)
    if (tracked == 0 && regressions == 0) {
      throw gcs::Error(
          "bench_compare: baseline " + baseline_path +
          " tracks no metrics (no key matches a known direction and no "
          "--higher/--lower was given) — the gate would be vacuous");
    }
    std::cout << "bench_compare: " << tracked << " tracked metric(s), "
              << regressions << " regression(s) beyond "
              << tolerance * 100 << "% ("
              << baseline_path << " vs " << current_path << ")\n";
    return regressions == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 2;
  }
}
