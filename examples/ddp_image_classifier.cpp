// Example: distributed training of the image-classifier proxy, comparing
// a chosen compression scheme against the FP16 baseline head-to-head and
// reporting the end-to-end utility (the paper's headline metric).
//
//   ./build/examples/ddp_image_classifier --scheme=thc:q=4:b=4:sat:partial
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/factory.h"
#include "sim/ddp_trainer.h"
#include "sim/tta.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace gcs;
  CliFlags flags(argc, argv);
  if (flags.help_requested()) {
    std::cout << "usage: ddp_image_classifier [--scheme=SPEC] [--rounds=N] "
                 "[--target=ACC] [--sched=KNOBS]\n"
                 "  KNOBS defaults to 'buckets=layer:workers=2' (the DDP-"
                 "style bucketed,\n  multi-worker scheduler); pass --sched= "
                 "to run the monolithic pipeline.\n";
    return 0;
  }

  train::GaussianMixtureDataset::Config data_config;
  data_config.features = 32;
  data_config.classes = 8;
  data_config.separation = 2.5;
  data_config.eval_samples = 1024;
  const train::GaussianMixtureDataset data(data_config);

  // Every run goes through the bucketed, multi-worker scheduler by
  // default: the factory builds the layer-bucket plan + encode pool for
  // the value path, and the cost model charges the matching
  // backward<->comm overlap (both from the same spec knobs).
  const std::string sched =
      flags.get_string("sched", "buckets=layer:workers=2");
  auto run = [&](std::string scheme) {
    if (!sched.empty() && !core::has_scheduler_knobs(scheme)) {
      scheme += ":" + sched;
    }
    sim::DdpConfig config;
    config.scheme = scheme;
    config.world_size = 4;
    config.hidden = {64};
    config.learning_rate = 0.1;
    config.max_rounds = static_cast<int>(flags.get_int("rounds", 4000));
    config.eval_every = 25;
    config.rolling_window = 6;
    config.patience = 30;
    config.direction = train::MetricDirection::kHigherIsBetter;
    return sim::train_ddp(data, config, sim::make_vgg19_workload(),
                          sim::CostModel());
  };

  const std::string scheme = flags.get_string("scheme", "topkc:b=2");
  std::cout << "Training classifier proxy (timed as VGG19): FP16 baseline "
               "vs "
            << scheme << "...\n";
  const auto baseline = run("fp16");
  const auto candidate = run(scheme);

  const double target =
      flags.get_double("target", baseline.best_metric - 0.02);
  AsciiTable table({"scheme", "rounds/s", "b", "final acc", "TTA (h)",
                    "buckets", "hidden ms"});
  for (const auto* r : {&baseline, &candidate}) {
    const auto tta = sim::time_to_target(
        *r, target, train::MetricDirection::kHigherIsBetter);
    table.add_row({r->scheme, format_sig(r->rounds_per_second, 3),
                   format_sig(r->mean_bits_per_coordinate, 3),
                   format_sig(r->final_metric, 4),
                   tta ? format_fixed(*tta / 3600.0, 3) : "never",
                   std::to_string(r->pipeline_chunks),
                   format_sig(r->overlap_saved_s_per_round * 1e3, 3)});
  }
  std::cout << table.to_string();

  const auto utility = sim::utility_vs_baseline(
      candidate, baseline, target,
      train::MetricDirection::kHigherIsBetter);
  std::cout << "\nTarget accuracy " << format_sig(target, 4) << ": ";
  if (utility) {
    std::cout << "utility = " << format_fixed(*utility, 2) << "x ("
              << (*utility > 1.0 ? "genuinely faster than the strong FP16 "
                                   "baseline"
                                 : "does NOT beat the FP16 baseline — the "
                                   "paper's warning in action")
              << ")\n";
  } else {
    std::cout << "target not reached by both runs — compare curves "
                 "directly.\n";
  }
  return 0;
}
