// Example: sweep every compression family on one task and print the
// complete utility picture — throughput, bits, vNMSE, final metric, TTA —
// demonstrating the paper's point that no single column tells the story.
//
//   ./build/examples/compare_schemes [--rounds=3000]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "sim/ddp_trainer.h"
#include "sim/tta.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace gcs;
  CliFlags flags(argc, argv);

  train::GaussianMixtureDataset::Config data_config;
  data_config.features = 32;
  data_config.classes = 8;
  data_config.separation = 2.5;
  data_config.eval_samples = 1024;
  const train::GaussianMixtureDataset data(data_config);

  const char* schemes[] = {
      "fp16",
      "fp32",
      "topk:b=2",
      "topkc:b=2",
      "thc:q=4:b=4:sat:partial",
      "thc:q=2:b=2:sat:partial",
      "powersgd:r=4",
      "powersgd:r=1",
  };

  const auto workload = sim::make_vgg19_workload();
  const sim::CostModel cost;
  std::vector<sim::DdpResult> results;
  for (const char* scheme : schemes) {
    sim::DdpConfig config;
    config.scheme = scheme;
    config.world_size = 4;
    config.hidden = {64};
    config.learning_rate = 0.1;
    config.max_rounds = static_cast<int>(flags.get_int("rounds", 3000));
    config.eval_every = 25;
    config.rolling_window = 6;
    config.patience = 30;
    config.direction = train::MetricDirection::kHigherIsBetter;
    std::cout << "running " << scheme << "...\n";
    results.push_back(sim::train_ddp(data, config, workload, cost));
  }

  const auto& fp16 = results[0];
  const double target = fp16.best_metric - 0.02;
  AsciiTable table({"scheme", "rounds/s", "b", "vNMSE", "final acc",
                    "TTA (h)", "utility vs FP16"});
  for (const auto& r : results) {
    const auto tta = sim::time_to_target(
        r, target, train::MetricDirection::kHigherIsBetter);
    const auto utility = sim::utility_vs_baseline(
        r, fp16, target, train::MetricDirection::kHigherIsBetter);
    table.add_row({r.scheme, format_sig(r.rounds_per_second, 3),
                   format_sig(r.mean_bits_per_coordinate, 3),
                   format_sig(r.mean_vnmse, 2),
                   format_sig(r.final_metric, 4),
                   tta ? format_fixed(*tta / 3600.0, 3) : "never",
                   utility ? format_fixed(*utility, 2) : "-"});
  }
  std::cout << '\n'
            << table.to_string()
            << "\nReading guide (the paper's evaluation methodology):\n"
            << "  * rounds/s alone ranks the aggressive schemes first;\n"
            << "  * vNMSE alone ranks the gentle schemes first;\n"
            << "  * only the TTA/utility columns (vs the STRONG FP16\n"
            << "    baseline) measure what a practitioner gets.\n";
  return 0;
}
