// gcs_worker: one rank of a real multi-process DDP aggregation round.
//
// Runs the identical compression protocol the in-process simulator runs —
// same codecs, same chunked hop-interleaved collectives — but over
// net::SocketFabric: every rank is its own OS process with its own
// transport endpoint, meshed by the rank-0 rendezvous. Gradients are
// synthetic and seeded, so every process derives the same per-worker
// inputs and the run needs no input files.
//
// Single-machine launch (forks all ranks, Unix-domain sockets):
//   ./build/example_gcs_worker --launch --world=4 --scheme=topkc:b=8
//       --rounds=3 --dim=65536 --chunk=4096
//
// Multi-host launch (one invocation per rank, TCP rendezvous at rank 0):
//   host0$ ./build/example_gcs_worker --rank=0 --world=4
//              --rendezvous=tcp:host0:29500 --scheme=thc:q=4:b=4:sat:partial
//   host1$ ./build/example_gcs_worker --rank=1 --world=4
//              --rendezvous=tcp:host0:29500 --scheme=thc:q=4:b=4:sat:partial
//   ... (all ranks must pass identical --scheme/--world/--rounds/--dim)
//
// Each rank prints its wire meters and a checksum of the aggregated sum;
// identical checksums across ranks are asserted in --launch mode.
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <string_view>
#include <thread>
#include <vector>

#include "comm/collectives.h"
#include "comm/transport_decorators.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/aggregation_pipeline.h"
#include "core/factory.h"
#include "core/synthetic_grad.h"
#include "health/health_monitor.h"
#include "health/monitored_transport.h"
#include "health/watchdog.h"
#include "measure/clock_sync.h"
#include "measure/trace.h"
#include "measure/trace_merge.h"
#include "net/launcher.h"
#include "net/socket_fabric.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/stats_server.h"
#include "tensor/layout.h"

namespace {

struct WorkerConfig {
  std::string scheme = "topkc:b=8";
  std::string rendezvous;
  int world = 4;
  int rounds = 2;
  std::size_t dim = 1 << 16;
  std::size_t chunk = 4096;
  std::uint64_t seed = 1234;
  /// Round-trace output prefix; each rank writes
  /// <trace>.rank<r>.json (measure/trace.h spans: encode, per-chunk
  /// send/recv, reduce, decode). Empty = tracing off (zero overhead).
  std::string trace;
  /// Elastic membership: survive peer failure (kill -9 one of the
  /// workers and watch the survivors re-rendezvous) instead of failing
  /// the run loudly.
  bool elastic = false;
  /// Recv deadline in ms (0 = transport default, 60 s).
  int peer_timeout_ms = 0;
  /// Elastic rejoin window in ms (0 = transport default, 2 s).
  int rejoin_window_ms = 0;
  /// Transport I/O engine: one epoll reactor loop per process (the
  /// default) or the legacy thread-per-peer readers (--io=threads).
  bool io_threads = false;
  /// Fault demo: this original rank kills itself (SIGKILL-equivalent
  /// _exit) while encoding round `die_round`. -1 = nobody dies.
  int die_rank = -1;
  int die_round = 0;
  /// Live telemetry (src/telemetry/): enable the metrics registry for
  /// this run. Implied by --stats-port.
  bool telemetry = false;
  /// Stats endpoint base port: rank r serves Prometheus text exposition
  /// on 127.0.0.1:(stats_port + r). -1 = no endpoint.
  int stats_port = -1;
  /// Keep the stats endpoint (and the process) alive this long after the
  /// last round, so an external scraper (tools/gcs_stat, CI) has a
  /// race-free window to read final counters.
  int stats_hold_ms = 0;
  /// With --trace: also write <prefix>.rank<r>.chrome.json, the Chrome
  /// trace-event export (chrome://tracing / Perfetto-loadable).
  bool chrome_trace = false;
  /// Straggler injection (the causal profiler's acceptance seam): this
  /// original rank sleeps --delay-send-ms before every transport send,
  /// making it artificially late without touching payloads. -1 = nobody.
  int delay_rank = -1;
  int delay_send_ms = 0;
  /// Always-on flight recorder: ring of the last N completed rounds,
  /// dumped post mortem on peer failure or fatal signal (0 = off).
  int flight_rounds = 8;
  /// Directory flight-recorder dumps land in.
  std::string flight_dir = ".";
  /// Clock-sync refresh period in rounds (the rendezvous sync always
  /// runs); 0 = rendezvous only. Periodic refreshes feed the drift
  /// estimate for long runs.
  int clock_sync_every = 32;
  /// Health plane (src/health/): hang watchdog + anomaly detectors +
  /// /health on the stats endpoint. Implies --telemetry.
  bool health = false;
  /// Anomaly-detector sampling period.
  int health_interval_ms = 200;
  /// Watchdog armed-lane deadline (default 5000 with --health).
  int watchdog_ms = 0;
  /// On a per-peer reader-lane stall, administratively fail the stuck
  /// peer's channel (SocketFabric::fail_peer) so the round aborts with a
  /// PeerFailure and elastic recovery engages. Implies --health.
  bool watchdog_abort = false;
  /// Hang injection (the watchdog's acceptance seam): this original rank
  /// freezes — stops sending, connections left open, total silence —
  /// after its --freeze-after-sends-th send. -1 = nobody freezes.
  int freeze_rank = -1;
  int freeze_after_sends = 8;
  /// How long the frozen rank holds before hard-exiting (bounds the
  /// demo even if nobody aborts it).
  int freeze_hold_ms = 30000;
  /// Deferred straggler: --delay-rank starts sleeping only at this round
  /// (-1 = from round 0). Lets the detectors build a clean baseline
  /// before the regression is injected.
  int delay_after_round = -1;
  /// Sleep between rounds on every rank: paces the round rate so the
  /// per-tick detector sampling sees enough windows to warm up.
  int round_gap_ms = 0;
};

/// Deterministic per-worker gradients: every process regenerates the same
/// tensors from (seed, round, worker), so nothing but protocol bytes
/// crosses the wire. One shared recipe (core/synthetic_grad.h) across
/// every protocol binary — the cross-process checks depend on it.
std::vector<std::vector<float>> make_grads(const WorkerConfig& config,
                                           std::uint64_t round) {
  return gcs::core::seeded_worker_grads(config.dim, config.world,
                                        config.seed, round);
}

/// FNV-1a over the aggregated floats — a cheap cross-process agreement
/// check (bit-identity is the claim, so a byte hash is the right probe).
std::uint64_t checksum(std::span<const float> values) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(values.data());
  for (std::size_t i = 0; i < values.size() * sizeof(float); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ull;
  }
  return h;
}

struct WorkerResult {
  std::uint64_t checksum = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t final_epoch = 0;
  int final_world = 0;
};

/// Runs all rounds as one rank over its own socket endpoint.
WorkerResult run_worker(const WorkerConfig& config, int rank) {
  // Telemetry must be on before any instrumented object is constructed —
  // handles are resolved at construction time (src/telemetry/metrics.h).
  if (config.telemetry || config.stats_port >= 0 || config.health) {
    gcs::telemetry::set_enabled(true);
  }
  gcs::net::SocketFabricConfig fc;
  fc.rendezvous = config.rendezvous;
  fc.world_size = config.world;
  fc.rank = rank;
  fc.elastic = config.elastic;
  if (config.peer_timeout_ms > 0) fc.recv_timeout_ms = config.peer_timeout_ms;
  if (config.rejoin_window_ms > 0) {
    fc.rejoin_window_ms = config.rejoin_window_ms;
  }
  fc.io = config.io_threads ? gcs::net::SocketIoMode::kThreads
                            : gcs::net::SocketIoMode::kReactor;
  gcs::net::SocketFabric fabric(fc);
  // Decorator stack, innermost first: freeze (hang injection) directly on
  // the fabric, then the straggler delay, then — outermost, health only —
  // the send-latency monitor, so the monitored time *includes* injected
  // delay and the slow rank sees its own regression as a local signal.
  // Clock sync runs over the raw fabric (a sync through the delay would
  // fold the injected latency into the offset estimate and hide the
  // straggler).
  gcs::comm::FreezeTransport frozen(
      fabric,
      rank == config.freeze_rank
          ? static_cast<std::uint64_t>(config.freeze_after_sends)
          : ~std::uint64_t{0},
      std::chrono::milliseconds(config.freeze_hold_ms), [] {
        std::cerr << "frozen rank: hold expired, exiting\n";
        _exit(7);
      });
  // Deferred straggler (--delay-after-round) starts transparent; the
  // round loop flips the delay on at the configured boundary.
  gcs::comm::DelayTransport delayed(
      frozen,
      std::chrono::microseconds(
          rank == config.delay_rank && config.delay_after_round < 0
              ? static_cast<std::int64_t>(config.delay_send_ms) * 1000
              : 0));
  std::unique_ptr<gcs::health::MonitoredTransport> monitored;
  if (config.health) {
    monitored = std::make_unique<gcs::health::MonitoredTransport>(delayed);
  }
  gcs::comm::Transport& transport =
      monitored != nullptr ? static_cast<gcs::comm::Transport&>(*monitored)
                           : delayed;
  gcs::comm::Communicator comm(transport, fabric.rank());

  // Rendezvous clock sync: estimate this rank's offset against rank 0 so
  // per-rank traces (and flight-recorder dumps) can be merged onto one
  // timeline by gcs_analyze. Collective — every rank passes here before
  // any round runs, including ranks that will die or be delayed later.
  gcs::comm::Communicator sync_comm(fabric, fabric.rank());
  gcs::measure::ClockSync clock_sync;
  clock_sync.refresh(sync_comm);
  // Periodic refreshes (drift tracking) need a stable membership and all
  // ranks alive at the same round boundary; the demos that violate that
  // keep the rendezvous model.
  const bool clock_refresh_ok = !config.elastic && config.die_rank < 0;

  const gcs::ModelLayout layout({gcs::LayerSpec{"flat", config.dim, 1}});
  // The spec's own knobs (validated and resolved by the factory — chunk=,
  // buckets=, workers=, autotune) win over the --chunk flag; transport
  // selection belongs to this binary, not the spec (every rank here IS a
  // socket endpoint already). All ranks pass identical --scheme/--dim, so
  // every process derives the identical chunk/bucket plan.
  gcs::core::PipelineConfig pipeline_config =
      gcs::core::parse_pipeline_config(config.scheme, layout, config.world);
  if (pipeline_config.effective_backend() !=
      gcs::core::PipelineBackend::kLocalReference) {
    throw gcs::Error(
        "gcs_worker: drop fabric=/fabric from --scheme — the transport is "
        "chosen by this binary (--launch / --rank + --rendezvous)");
  }
  // chunk_bytes == 0 is a meaningful value (monolithic collectives), so
  // "spec wins" must key on the option's presence, not on its value; the
  // autotuner resolving a chunk size counts as the spec speaking.
  const bool spec_sets_chunk =
      config.scheme.find(":chunk=") != std::string::npos ||
      config.scheme.find("autotune") != std::string::npos ||
      pipeline_config.bucket_mode == gcs::sched::BucketMode::kLayerBuckets;
  if (!spec_sets_chunk) pipeline_config.chunk_bytes = config.chunk;
  gcs::measure::TraceRecorder recorder;
  recorder.set_origin_rank(rank);
  if (!config.trace.empty()) pipeline_config.trace = &recorder;
  // Always-on flight recorder: keeps the last N rounds' spans in a ring
  // and dumps them post mortem on peer failure or a fatal signal. When
  // --trace is off the recorder's internal sink feeds the pipeline; with
  // --trace the user recorder stays the sink and completed rounds are
  // observe()d into the ring from the round loop below.
  std::unique_ptr<gcs::telemetry::FlightRecorder> flight;
  if (config.flight_rounds > 0) {
    gcs::telemetry::FlightRecorderOptions fo;
    fo.ring_rounds = static_cast<std::size_t>(config.flight_rounds);
    fo.dump_dir = config.flight_dir;
    fo.rank = rank;
    flight = std::make_unique<gcs::telemetry::FlightRecorder>(fo);
    flight->set_clock(clock_sync.model());
    gcs::telemetry::FlightRecorder::arm_process_hooks(flight.get());
    pipeline_config.flight = flight.get();
  }
  // Health plane: watchdog over the heartbeat lanes plus the anomaly
  // monitor feeding /health. Started before the round loop so detector
  // baselines cover the run from its first window.
  std::unique_ptr<gcs::health::Watchdog> watchdog;
  std::unique_ptr<gcs::health::HealthMonitor> monitor;
  if (config.health) {
    gcs::health::WatchdogConfig wc;
    wc.deadline_ms = config.watchdog_ms > 0
                         ? static_cast<std::uint64_t>(config.watchdog_ms)
                         : 5000;
    if (wc.deadline_ms / 4 < wc.poll_interval_ms) {
      wc.poll_interval_ms = wc.deadline_ms / 4 + 1;
    }
    const bool abort_on_stall = config.watchdog_abort;
    wc.on_stall = [&fabric, rank,
                   abort_on_stall](const gcs::health::StallReport& s) {
      std::cerr << "rank " << rank << ": WATCHDOG STALL lane=" << s.lane
                << " peer=" << s.peer << " silent_ms=" << s.silent_ms
                << " progress=" << s.progress << "\n";
      if (abort_on_stall && s.peer >= 0 && s.lane == "net.reader") {
        const bool cut = fabric.fail_peer(s.peer);
        std::cerr << "rank " << rank << ": watchdog abort: "
                  << (cut ? "failed channel to peer "
                          : "peer already out of the mesh: ")
                  << s.peer << "\n";
      }
    };
    wc.on_recover = [rank](const gcs::health::StallReport& s) {
      std::cerr << "rank " << rank << ": watchdog recovered lane=" << s.lane
                << " peer=" << s.peer << "\n";
    };
    watchdog = std::make_unique<gcs::health::Watchdog>(wc);
    watchdog->start();

    gcs::health::HealthMonitorConfig hc;
    hc.rank = rank;
    hc.interval_ms = static_cast<std::uint64_t>(
        config.health_interval_ms > 0 ? config.health_interval_ms : 200);
    hc.watchdog = watchdog.get();
    if (!config.trace.empty()) hc.trace = &recorder;
    monitor = std::make_unique<gcs::health::HealthMonitor>(hc);
    monitor->start();
  }
  // Declared after fabric/watchdog/monitor on purpose: teardown must run
  // stats -> monitor -> watchdog -> fabric, since the server may be
  // mid-/health off the monitor, and the watchdog's abort callback
  // reaches into the fabric.
  std::unique_ptr<gcs::telemetry::StatsServer> stats;
  if (config.stats_port >= 0) {
    stats = std::make_unique<gcs::telemetry::StatsServer>(config.stats_port +
                                                          rank);
    if (monitor != nullptr) {
      stats->set_health_provider(
          [m = monitor.get()] { return m->health_json(); });
    }
  }
  pipeline_config.elastic = config.elastic;
  pipeline_config.peer_timeout_ms = config.peer_timeout_ms;
  pipeline_config.rejoin_window_ms = config.rejoin_window_ms;
  if (config.die_rank == rank) {
    const int die_round = config.die_round;
    pipeline_config.fault_hook = [die_round](const char* point,
                                             std::uint64_t round) {
      if (round == static_cast<std::uint64_t>(die_round) &&
          std::string_view(point) == "encode") {
        std::cerr << "rank dying on purpose at round " << round << "\n";
        _exit(9);  // crash, not unwind: the demo's simulated kill -9
      }
    };
  }
  gcs::core::AggregationPipeline pipeline(
      gcs::core::make_scheme_codec(config.scheme, layout, config.world),
      pipeline_config);

  std::vector<float> out(config.dim);
  std::uint64_t sum_hash = 0;
  std::vector<gcs::measure::RoundTrace> traces;
  std::uint64_t seen_epoch = 0;
  for (int r = 0; r < config.rounds; ++r) {
    if (config.round_gap_ms > 0 && r > 0) {
      // All ranks pace identically, so the gap shifts the round rate
      // without skewing any one rank.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.round_gap_ms));
    }
    if (rank == config.delay_rank && config.delay_after_round >= 0 &&
        r == config.delay_after_round) {
      delayed.set_send_delay(std::chrono::microseconds(
          static_cast<std::int64_t>(config.delay_send_ms) * 1000));
      std::cerr << "rank " << rank << ": injecting " << config.delay_send_ms
                << " ms per-send delay from round " << r << "\n";
    }
    if (clock_refresh_ok && config.clock_sync_every > 0 && r > 0 &&
        r % config.clock_sync_every == 0) {
      clock_sync.refresh(sync_comm);
      if (flight != nullptr) flight->set_clock(clock_sync.model());
    }
    const auto grads = make_grads(config, static_cast<std::uint64_t>(r));
    if (config.elastic) {
      // Gradients stay keyed by each worker's immutable original rank:
      // a survivor keeps its own gradient stream across epoch swaps.
      pipeline.aggregate_elastic(
          transport,
          [&](int original) {
            return std::span<const float>(
                grads[static_cast<std::size_t>(original)]);
          },
          out, static_cast<std::uint64_t>(r));
      const auto world = fabric.membership();
      if (world.epoch != seen_epoch) {
        seen_epoch = world.epoch;
        std::cerr << "original rank " << rank << ": recovered into epoch "
                  << world.epoch << " as rank " << world.self
                  << " of " << world.world_size() << "\n";
      }
    } else {
      std::vector<std::span<const float>> views;
      for (const auto& g : grads) views.emplace_back(g.data(), g.size());
      pipeline.aggregate_over(
          comm, std::span<const std::span<const float>>(views), out,
          static_cast<std::uint64_t>(r));
    }
    sum_hash ^= checksum(out) + 0x9e3779b97f4a7c15ull + (sum_hash << 6) +
                (sum_hash >> 2);
    if (!config.trace.empty()) {
      traces.push_back(recorder.take(static_cast<std::uint64_t>(r),
                                     config.scheme, "socket"));
      if (flight != nullptr) flight->observe(traces.back());
    }
  }
  if (!config.trace.empty()) {
    const std::string path =
        config.trace + ".rank" + std::to_string(rank) + ".json";
    std::ofstream trace_out(path);
    if (trace_out) {
      gcs::measure::RankTrace rank_trace;
      rank_trace.rank = rank;
      rank_trace.clock = clock_sync.model();
      rank_trace.traces = traces;
      trace_out << gcs::measure::rank_trace_to_json(rank_trace);
    } else {
      std::cerr << "gcs_worker: warning: cannot write " << path << '\n';
    }
    if (config.chrome_trace) {
      const std::string chrome_path =
          config.trace + ".rank" + std::to_string(rank) + ".chrome.json";
      std::ofstream chrome_out(chrome_path);
      if (chrome_out) {
        chrome_out << gcs::telemetry::chrome_trace_json(traces, rank,
                                                        clock_sync.model());
      } else {
        std::cerr << "gcs_worker: warning: cannot write " << chrome_path
                  << '\n';
      }
    }
  }
  if (stats != nullptr && config.stats_hold_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.stats_hold_ms));
  }
  WorkerResult result;
  result.checksum = sum_hash;
  result.bytes_sent = fabric.bytes_sent(fabric.rank());
  result.bytes_received = fabric.bytes_received(fabric.rank());
  result.final_epoch = fabric.membership().epoch;
  result.final_world = fabric.world_size();
  return result;
}

int launch_all(WorkerConfig config) {
  using namespace gcs;
  if (config.rendezvous.empty()) {
    config.rendezvous = net::unique_unix_rendezvous();
  }
  std::cout << "Launching " << config.world << " worker processes ("
            << config.scheme << ", d=" << config.dim << ", "
            << config.rounds << " rounds, rendezvous "
            << config.rendezvous << ")\n";
  if (config.die_rank >= 0) {
    std::cout << "Fault demo: rank " << config.die_rank
              << " dies at round " << config.die_round
              << (config.elastic ? " (elastic: survivors recover)\n"
                                 : " (elastic off: run fails loudly)\n");
  }
  if (config.delay_rank >= 0) {
    std::cout << "Straggler demo: rank " << config.delay_rank << " sleeps "
              << config.delay_send_ms << " ms before every send";
    if (config.delay_after_round >= 0) {
      std::cout << " from round " << config.delay_after_round;
    }
    std::cout << "\n";
  }
  if (config.freeze_rank >= 0) {
    std::cout << "Hang demo: rank " << config.freeze_rank
              << " freezes (silent, connections open) after "
              << config.freeze_after_sends << " sends"
              << (config.watchdog_abort
                      ? " (watchdog abort: survivors recover)\n"
                      : "\n");
  }
  // Children inherit stdio buffers copy-on-write; flush before forking so
  // the banner cannot be replayed by a child's own flush.
  std::cout.flush();
  net::ForkedWorkers workers(0, config.world, [&](int rank) {
    const WorkerResult r = run_worker(config, rank);
    ByteBuffer report;
    ByteWriter w(report);
    w.put<std::uint64_t>(r.checksum);
    w.put<std::uint64_t>(r.bytes_sent);
    w.put<std::uint64_t>(r.bytes_received);
    w.put<std::uint64_t>(r.final_epoch);
    w.put<std::uint64_t>(static_cast<std::uint64_t>(r.final_world));
    return report;
  });
  const auto outcomes = workers.join_outcomes();

  AsciiTable table({"rank", "agg checksum", "sent bytes", "recv bytes",
                    "epoch", "world"});
  std::vector<WorkerResult> results;
  int dead = 0;
  for (const auto& out : outcomes) {
    if (!out.ok) {
      ++dead;
      const std::string cause =
          out.error.empty() ? out.wait_status : out.error;
      table.add_row({std::to_string(out.rank), "DEAD (" + cause + ")", "-",
                     "-", "-", "-"});
      continue;
    }
    ByteReader r(out.report);
    WorkerResult res;
    res.checksum = r.get<std::uint64_t>();
    res.bytes_sent = r.get<std::uint64_t>();
    res.bytes_received = r.get<std::uint64_t>();
    res.final_epoch = r.get<std::uint64_t>();
    res.final_world = static_cast<int>(r.get<std::uint64_t>());
    results.push_back(res);
    std::ostringstream hash;
    hash << std::hex << res.checksum;
    table.add_row({std::to_string(out.rank), hash.str(),
                   std::to_string(res.bytes_sent),
                   std::to_string(res.bytes_received),
                   std::to_string(res.final_epoch),
                   std::to_string(res.final_world)});
  }
  std::cout << table.to_string();

  const int expected_dead =
      (config.die_rank >= 0 ? 1 : 0) + (config.freeze_rank >= 0 ? 1 : 0);
  if (dead != expected_dead || results.empty()) {
    std::cout << dead << " rank(s) died unexpectedly.\n";
    return 1;
  }
  bool agree = true;
  for (const auto& r : results) agree &= r.checksum == results[0].checksum;
  std::cout << (agree ? "All surviving ranks hold the identical "
                        "aggregated sum.\n"
                      : "RANKS DISAGREE — protocol bug.\n");
  return agree ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gcs;
  try {
    CliFlags flags(argc, argv);
    if (flags.help_requested()) {
      std::cout
          << "gcs_worker — one rank of a multi-process aggregation round\n"
             "  --launch              fork all ranks on this machine\n"
             "  --rank=<r>            run as one rank (multi-host mode)\n"
             "  --world=<n>           world size (default 4)\n"
             "  --rendezvous=<addr>   unix:<path> or tcp:<host>:<port>\n"
             "  --scheme=<spec>       factory spec (default topkc:b=8);\n"
             "                        scheduler knobs (buckets=layer,\n"
             "                        workers=N, autotune) are honored\n"
             "  --rounds=<k>          aggregation rounds (default 2)\n"
             "  --dim=<d>             gradient dimension (default 65536)\n"
             "  --chunk=<bytes>       pipeline chunk size (default 4096)\n"
             "  --seed=<s>            gradient seed (default 1234)\n"
             "  --trace=<prefix>      write per-rank round traces to\n"
             "                        <prefix>.rank<r>.json (measure/)\n"
             "  --chrome-trace        with --trace: also write the Chrome\n"
             "                        trace-event export to\n"
             "                        <prefix>.rank<r>.chrome.json\n"
             "  --telemetry           enable the live metrics registry\n"
             "                        (src/telemetry/; also via\n"
             "                        GCS_TELEMETRY=1)\n"
             "  --stats-port=<p>      serve Prometheus text exposition on\n"
             "                        127.0.0.1:(p + rank); implies\n"
             "                        --telemetry (scrape with gcs_stat)\n"
             "  --stats-hold-ms=<t>   keep the stats endpoint up this long\n"
             "                        after the last round\n"
             "  --elastic             survive peer failure: re-rendezvous\n"
             "                        the survivors (new epoch, dense\n"
             "                        re-ranking) with EF state intact\n"
             "  --io=<engine>         transport I/O engine: reactor (one\n"
             "                        epoll loop per process, default) or\n"
             "                        threads (legacy one reader thread\n"
             "                        per peer)\n"
             "  --peer-timeout-ms=<t> recv deadline (default 60000)\n"
             "  --rejoin-window-ms=<t> elastic rejoin window (default\n"
             "                        2000)\n"
             "  --die-rank=<r>        fault demo: rank r kills itself\n"
             "  --die-round=<k>       ... while encoding round k\n"
             "  --delay-rank=<r>      straggler demo: rank r sleeps before\n"
             "                        every send (gcs_analyze names it)\n"
             "  --delay-send-ms=<t>   ... per-send delay (default 1)\n"
             "  --flight-rounds=<n>   flight-recorder ring depth — last n\n"
             "                        rounds dumped post mortem on peer\n"
             "                        failure / fatal signal (default 8;\n"
             "                        0 = off)\n"
             "  --flight-dir=<d>      flight-dump directory (default .)\n"
             "  --clock-sync-every=<k> refresh the cross-rank clock model\n"
             "                        every k rounds (default 32; 0 =\n"
             "                        rendezvous sync only)\n"
             "  --health              health plane (src/health/): hang\n"
             "                        watchdog + anomaly detectors + the\n"
             "                        /health endpoint (scrape with\n"
             "                        gcs_top); implies --telemetry\n"
             "  --health-interval-ms=<t> detector sampling period\n"
             "                        (default 200)\n"
             "  --watchdog-ms=<t>     armed-lane stall deadline (default\n"
             "                        5000); implies --health\n"
             "  --watchdog-abort      on a reader-lane stall, fail the\n"
             "                        stuck peer's channel so elastic\n"
             "                        recovery engages; implies --health\n"
             "  --freeze-rank=<r>     hang demo: rank r goes silent\n"
             "                        (connections open, no FIN) after\n"
             "                        --freeze-after-sends sends\n"
             "  --freeze-after-sends=<n> ... sends before the freeze\n"
             "                        (default 8)\n"
             "  --freeze-hold-ms=<t>  ... frozen rank hard-exits after\n"
             "                        this hold (default 30000)\n"
             "  --delay-after-round=<k> start --delay-rank's delay only\n"
             "                        at round k (clean baseline first)\n"
             "  --round-gap-ms=<t>    sleep between rounds on all ranks\n"
             "                        (paces detector sampling windows)\n";
      return 0;
    }
    WorkerConfig config;
    config.scheme = flags.get_string("scheme", config.scheme);
    config.rendezvous = flags.get_string("rendezvous", "");
    config.world = static_cast<int>(flags.get_int("world", config.world));
    config.rounds = static_cast<int>(flags.get_int("rounds", config.rounds));
    config.dim = static_cast<std::size_t>(
        flags.get_int("dim", static_cast<std::int64_t>(config.dim)));
    config.chunk = static_cast<std::size_t>(
        flags.get_int("chunk", static_cast<std::int64_t>(config.chunk)));
    config.seed = static_cast<std::uint64_t>(
        flags.get_int("seed", static_cast<std::int64_t>(config.seed)));
    config.trace = flags.get_string("trace", "");
    config.chrome_trace = flags.get_bool("chrome-trace", false);
    config.telemetry = flags.get_bool("telemetry", false);
    config.stats_port = static_cast<int>(flags.get_int("stats-port", -1));
    config.stats_hold_ms =
        static_cast<int>(flags.get_int("stats-hold-ms", 0));
    config.elastic = flags.get_bool("elastic", false);
    config.peer_timeout_ms =
        static_cast<int>(flags.get_int("peer-timeout-ms", 0));
    config.rejoin_window_ms =
        static_cast<int>(flags.get_int("rejoin-window-ms", 0));
    const std::string io = flags.get_string("io", "reactor");
    if (io != "reactor" && io != "threads") {
      std::cerr << "--io expects reactor or threads, got '" << io << "'\n";
      return 2;
    }
    config.io_threads = io == "threads";
    config.die_rank = static_cast<int>(flags.get_int("die-rank", -1));
    config.die_round = static_cast<int>(flags.get_int("die-round", 0));
    config.delay_rank = static_cast<int>(flags.get_int("delay-rank", -1));
    config.delay_send_ms =
        static_cast<int>(flags.get_int("delay-send-ms", 1));
    config.flight_rounds = static_cast<int>(
        flags.get_int("flight-rounds", config.flight_rounds));
    config.flight_dir = flags.get_string("flight-dir", config.flight_dir);
    config.clock_sync_every = static_cast<int>(
        flags.get_int("clock-sync-every", config.clock_sync_every));
    config.health = flags.get_bool("health", false);
    config.health_interval_ms = static_cast<int>(
        flags.get_int("health-interval-ms", config.health_interval_ms));
    config.watchdog_ms =
        static_cast<int>(flags.get_int("watchdog-ms", config.watchdog_ms));
    config.watchdog_abort = flags.get_bool("watchdog-abort", false);
    config.freeze_rank =
        static_cast<int>(flags.get_int("freeze-rank", -1));
    config.freeze_after_sends = static_cast<int>(
        flags.get_int("freeze-after-sends", config.freeze_after_sends));
    config.freeze_hold_ms = static_cast<int>(
        flags.get_int("freeze-hold-ms", config.freeze_hold_ms));
    config.delay_after_round =
        static_cast<int>(flags.get_int("delay-after-round", -1));
    config.round_gap_ms =
        static_cast<int>(flags.get_int("round-gap-ms", 0));
    // A watchdog or abort request is a health-plane request.
    if (config.watchdog_ms > 0 || config.watchdog_abort) {
      config.health = true;
    }
    if (config.freeze_rank >= 0) {
      if (config.freeze_rank >= config.world) {
        std::cerr << "--freeze-rank=" << config.freeze_rank
                  << " is outside --world=" << config.world << "\n";
        return 2;
      }
      if (config.freeze_after_sends < 0 || config.freeze_hold_ms <= 0) {
        std::cerr << "--freeze-rank needs --freeze-after-sends >= 0 and "
                     "--freeze-hold-ms > 0\n";
        return 2;
      }
    }
    if (config.delay_rank >= 0) {
      if (config.delay_rank >= config.world) {
        std::cerr << "--delay-rank=" << config.delay_rank
                  << " is outside --world=" << config.world << "\n";
        return 2;
      }
      if (config.delay_send_ms <= 0) {
        std::cerr << "--delay-rank needs --delay-send-ms > 0\n";
        return 2;
      }
    }
    if (config.flight_rounds < 0) {
      std::cerr << "--flight-rounds must be >= 0\n";
      return 2;
    }
    if (config.die_rank >= 0) {
      // A fault demo whose hook can never fire would report a healthy
      // run as "0 rank(s) died unexpectedly" — reject it up front.
      if (config.die_rank >= config.world) {
        std::cerr << "--die-rank=" << config.die_rank
                  << " is outside --world=" << config.world << "\n";
        return 2;
      }
      if (config.die_round < 0 || config.die_round >= config.rounds) {
        std::cerr << "--die-round=" << config.die_round
                  << " is outside --rounds=" << config.rounds << "\n";
        return 2;
      }
    }

    if (flags.get_bool("launch", false)) return launch_all(config);

    const int rank = static_cast<int>(flags.get_int("rank", -1));
    if (rank < 0) {
      std::cerr << "pass --launch or --rank=<r> (see --help)\n";
      return 2;
    }
    if (config.rendezvous.empty()) {
      std::cerr << "--rank mode needs --rendezvous=<addr>\n";
      return 2;
    }
    const WorkerResult r = run_worker(config, rank);
    std::cout << "rank " << rank << ": checksum " << std::hex << r.checksum
              << std::dec << ", sent " << r.bytes_sent << " B, received "
              << r.bytes_received << " B\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "gcs_worker: " << e.what() << '\n';
    return 1;
  }
}
