// Example: distributed training of the language-model proxy with a chosen
// compression scheme, reporting the TTA curve (time measured at BERT-large
// scale on the modelled testbed).
//
//   ./build/examples/ddp_language_model --scheme=topkc:b=2 --rounds=2000
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/factory.h"
#include "sim/ddp_trainer.h"
#include "sim/tta.h"
#include "sim/workload.h"

int main(int argc, char** argv) {
  using namespace gcs;
  CliFlags flags(argc, argv);
  if (flags.help_requested()) {
    std::cout << "usage: ddp_language_model [--scheme=SPEC] [--rounds=N] "
                 "[--lr=X] [--workers=N] [--sched=KNOBS]\n"
                 "  SPEC examples: fp16 | topk:b=8 | topkc:b=2 | "
                 "thc:q=4:b=4:sat:partial | powersgd:r=4\n"
                 "  KNOBS defaults to 'buckets=layer:workers=2' (bucketed "
                 "backward-overlap\n  scheduler); pass --sched= for the "
                 "monolithic pipeline.\n";
    return 0;
  }

  train::MarkovLmDataset::Config data_config;
  data_config.vocab = 32;
  data_config.eval_samples = 1024;
  const train::MarkovLmDataset data(data_config);

  sim::DdpConfig config;
  config.scheme = flags.get_string("scheme", "topkc:b=2");
  // Route the run through the bucketed, multi-worker scheduler (value
  // path and cost charge both read the same spec knobs). A spec that
  // already carries scheduler knobs wins outright — appending defaults
  // would silently override it (parse_spec is last-wins for options).
  const std::string sched =
      flags.get_string("sched", "buckets=layer:workers=2");
  if (!sched.empty() && !core::has_scheduler_knobs(config.scheme)) {
    config.scheme += ":" + sched;
  }
  config.world_size = static_cast<int>(flags.get_int("workers", 4));
  config.hidden = {64};
  config.learning_rate = flags.get_double("lr", 0.25);
  config.max_rounds = static_cast<int>(flags.get_int("rounds", 2000));
  config.eval_every = 25;
  config.rolling_window = 6;
  config.patience = 30;
  config.direction = train::MetricDirection::kLowerIsBetter;

  const auto workload = sim::make_bert_large_workload();
  const sim::CostModel cost;
  std::cout << "Training LM proxy with " << config.scheme << " on "
            << config.world_size << " workers (timed as " << workload.name
            << ", d=" << workload.dimension() << ")...\n";
  const auto result = sim::train_ddp(data, config, workload, cost);

  AsciiTable curve({"round", "time (h)", "perplexity (rolling)"});
  const std::size_t step = std::max<std::size_t>(result.curve.size() / 15, 1);
  for (std::size_t i = 0; i < result.curve.size(); i += step) {
    const auto& p = result.curve[i];
    curve.add_row({std::to_string(p.round),
                   format_fixed(p.time_s / 3600.0, 3),
                   format_sig(p.metric, 4)});
  }
  std::cout << curve.to_string() << '\n'
            << "scheme            : " << result.scheme << '\n'
            << "throughput        : " << format_sig(result.rounds_per_second, 3)
            << " rounds/s (simulated testbed)\n"
            << "bits/coordinate   : "
            << format_sig(result.mean_bits_per_coordinate, 3) << '\n'
            << "buckets/round     : " << result.pipeline_chunks << '\n'
            << "overlap hidden    : "
            << format_sig(result.overlap_saved_s_per_round * 1e3, 3)
            << " ms/round\n"
            << "best perplexity   : " << format_sig(result.best_metric, 4)
            << (result.converged ? " (early-stopped)" : " (round cap)")
            << '\n'
            << "simulated time    : "
            << format_fixed(result.simulated_seconds / 3600.0, 2) << " h\n";
  return 0;
}
