// Quickstart: compress-and-aggregate one set of gradients with every
// scheme, printing the measured bits-per-coordinate and compression error.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>
#include <span>
#include <vector>

#include "common/table.h"
#include "core/compressor.h"
#include "core/factory.h"
#include "core/synthetic_grad.h"
#include "core/vnmse.h"
#include "tensor/layout.h"

int main() {
  using namespace gcs;

  // 1. A cluster of 4 workers with ~260k-parameter transformer-shaped
  //    gradients (synthetic, seeded — see core/synthetic_grad.h).
  constexpr int kWorkers = 4;
  core::SyntheticGradConfig grad_config;
  grad_config.layout = make_transformer_like_layout(1 << 18);
  grad_config.world_size = kWorkers;
  grad_config.locality = 0.99;
  const core::SyntheticGradients source(grad_config);

  std::vector<std::vector<float>> grads;
  source.generate(/*round=*/0, grads);
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());

  // 2. Build compressors from spec strings (see core/factory.h for the
  //    grammar) and run one aggregation round each.
  const char* specs[] = {
      "fp32",        "fp16",
      "topk:b=2",    "topkc:b=2",
      "thc:q=4:b=4:sat:partial",
      "powersgd:r=4",
  };

  AsciiTable table({"scheme", "path", "bits/coord", "vNMSE"});
  std::vector<float> aggregated(source.dimension());
  for (const char* spec : specs) {
    auto compressor =
        core::make_compressor(spec, source.layout(), kWorkers);
    const core::RoundStats stats = compressor->aggregate(
        std::span<const std::span<const float>>(views), aggregated,
        /*round=*/0);
    table.add_row(
        {compressor->name(), to_string(compressor->path()),
         format_sig(stats.bits_per_coordinate(source.dimension()), 3),
         format_sig(core::vnmse(
                        aggregated,
                        std::span<const std::span<const float>>(views)),
                    3)});
  }

  std::cout << "One aggregation round over " << kWorkers << " workers, d="
            << source.dimension() << ":\n\n"
            << table.to_string()
            << "\nLower b = less traffic; lower vNMSE = closer to the true "
               "gradient sum.\nThe paper's thesis: neither column alone "
               "predicts end-to-end utility — see the fig*_tta benches.\n";
  return 0;
}
