// Tests for comm/fabric: delivery, ordering, tags, traffic metering.
#include "comm/fabric.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/check.h"

namespace gcs::comm {
namespace {

ByteBuffer bytes_of(std::initializer_list<int> xs) {
  ByteBuffer b;
  for (int x : xs) b.push_back(static_cast<std::byte>(x));
  return b;
}

TEST(Fabric, DeliversInFifoOrder) {
  Fabric fabric(2);
  fabric.send(0, 1, 1, bytes_of({1}));
  fabric.send(0, 1, 2, bytes_of({2}));
  EXPECT_EQ(fabric.recv(1, 0, 1).payload, bytes_of({1}));
  EXPECT_EQ(fabric.recv(1, 0, 2).payload, bytes_of({2}));
}

TEST(Fabric, ChannelsAreIndependentPerPair) {
  Fabric fabric(3);
  fabric.send(0, 2, 9, bytes_of({7}));
  fabric.send(1, 2, 9, bytes_of({8}));
  // Receive from rank 1 first even though rank 0 sent earlier.
  EXPECT_EQ(fabric.recv(2, 1, 9).payload, bytes_of({8}));
  EXPECT_EQ(fabric.recv(2, 0, 9).payload, bytes_of({7}));
}

TEST(Fabric, TagMismatchThrows) {
  Fabric fabric(2);
  fabric.send(0, 1, 5, bytes_of({1}));
  EXPECT_THROW(fabric.recv(1, 0, 6), Error);
}

TEST(Fabric, BlocksUntilMessageArrives) {
  Fabric fabric(2);
  std::thread sender([&fabric] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    fabric.send(0, 1, 3, bytes_of({42}));
  });
  const auto msg = fabric.recv(1, 0, 3);
  sender.join();
  EXPECT_EQ(msg.payload, bytes_of({42}));
}

TEST(Fabric, MetersBytesPerRank) {
  Fabric fabric(2);
  fabric.send(0, 1, 1, ByteBuffer(100));
  fabric.send(0, 1, 2, ByteBuffer(50));
  fabric.send(1, 0, 3, ByteBuffer(7));
  EXPECT_EQ(fabric.bytes_sent(0), 150u);
  EXPECT_EQ(fabric.bytes_sent(1), 7u);
  EXPECT_EQ(fabric.total_bytes(), 157u);
  // Receives are metered on delivery, not on send.
  EXPECT_EQ(fabric.bytes_received(1), 0u);
  (void)fabric.recv(1, 0, 1);
  (void)fabric.recv(1, 0, 2);
  (void)fabric.recv(0, 1, 3);
  EXPECT_EQ(fabric.bytes_received(1), 150u);
  EXPECT_EQ(fabric.bytes_received(0), 7u);
  fabric.reset_counters();
  EXPECT_EQ(fabric.total_bytes(), 0u);
  EXPECT_EQ(fabric.bytes_received(1), 0u);
}

TEST(Fabric, ResetCountersRefusesUndrainedChannels) {
  // Resetting with messages still in flight means the caller lost track
  // of the protocol state — subsequent meter readings would mix epochs.
  Fabric fabric(2);
  fabric.send(0, 1, 1, ByteBuffer(10));
  EXPECT_THROW(fabric.reset_counters(), Error);
  // The counters must be untouched by the refused reset.
  EXPECT_EQ(fabric.bytes_sent(0), 10u);
  (void)fabric.recv(1, 0, 1);
  fabric.reset_counters();
  EXPECT_EQ(fabric.bytes_sent(0), 0u);
}

TEST(Fabric, SelfSendWorks) {
  Fabric fabric(1);
  fabric.send(0, 0, 1, bytes_of({9}));
  EXPECT_EQ(fabric.recv(0, 0, 1).payload, bytes_of({9}));
}

TEST(Fabric, InvalidRankThrows) {
  Fabric fabric(2);
  EXPECT_THROW(fabric.send(0, 5, 1, ByteBuffer{}), std::logic_error);
  EXPECT_THROW(fabric.bytes_sent(9), std::logic_error);
}

}  // namespace
}  // namespace gcs::comm
