// Tests for core/topkc_compressor: consensus selection, wire budget
// b = 16(J C/d + 1/C), locality advantage, permutation ablation, EF.
#include "core/topkc_compressor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/synthetic_grad.h"
#include "core/vnmse.h"
#include "tensor/layout.h"

namespace gcs::core {
namespace {

std::vector<std::vector<float>> random_grads(int n, std::size_t d,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> grads(n, std::vector<float>(d));
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[w]) v = static_cast<float>(rng.next_gaussian());
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

TEST(TopKCConfig, JForBitsMatchesPaperFormula) {
  // b = 16 (J C / d + 1 / C)  =>  J = (b/16 - 1/C) d / C.
  const std::size_t d = 64 * 64 * 16;  // 65536
  // b=8, C=64: J = (0.5 - 1/64)*65536/64 = 496.
  EXPECT_EQ(TopKCConfig::j_for_bits(d, 64, 8.0), 496u);
  // b below the metadata floor clamps to 1.
  EXPECT_EQ(TopKCConfig::j_for_bits(d, 64, 0.01), 1u);
}

TEST(TopKCConfig, PaperChunkSizeRule) {
  EXPECT_EQ(TopKCConfig::default_chunk_size(8.0), 64u);
  EXPECT_EQ(TopKCConfig::default_chunk_size(2.0), 64u);
  EXPECT_EQ(TopKCConfig::default_chunk_size(0.5), 128u);
}

TEST(TopKC, PathIsAllReduce) {
  TopKCConfig config;
  config.dimension = 640;
  config.world_size = 2;
  config.chunk_size = 64;
  config.num_top_chunks = 2;
  auto c = make_topkc(config);
  EXPECT_EQ(c->path(), AggregationPath::kAllReduce);
  EXPECT_EQ(c->name(), "TopKC");
}

TEST(TopKC, MeasuredBitsMatchFormula) {
  const std::size_t d = 65536;
  TopKCConfig config;
  config.dimension = d;
  config.world_size = 4;
  config.chunk_size = 64;
  config.num_top_chunks = TopKCConfig::j_for_bits(d, 64, 8.0);
  config.error_feedback = false;
  auto c = make_topkc(config);
  const auto grads = random_grads(4, d, 1);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  EXPECT_NEAR(stats.bits_per_coordinate(d), 8.0, 0.1);
  // Metadata (norm round) is 16/C bits/coordinate of it.
  EXPECT_NEAR(8.0 * static_cast<double>(stats.metadata_bytes) / d,
              16.0 / 64.0, 1e-6);
}

TEST(TopKC, AggregatesChunksWithLargestGlobalNorm) {
  // Worker gradients that agree on which chunk is hot: that chunk must be
  // selected and summed; cold chunks must be zero.
  const std::size_t d = 256, c_size = 16;
  TopKCConfig config;
  config.dimension = d;
  config.world_size = 2;
  config.chunk_size = c_size;
  config.num_top_chunks = 1;
  config.error_feedback = false;
  auto c = make_topkc(config);
  std::vector<std::vector<float>> grads(2, std::vector<float>(d, 0.01f));
  for (std::size_t i = 3 * c_size; i < 4 * c_size; ++i) {
    grads[0][i] = 1.0f;
    grads[1][i] = 2.0f;
  }
  std::vector<float> out(d);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  for (std::size_t i = 0; i < d; ++i) {
    if (i >= 3 * c_size && i < 4 * c_size) {
      EXPECT_NEAR(out[i], 3.0f, 0.01f) << i;
    } else {
      EXPECT_EQ(out[i], 0.0f) << i;
    }
  }
}

TEST(TopKC, ConsensusEvenWhenWorkersDisagree) {
  // Workers prefer different chunks; the chunk with the largest *summed*
  // norm wins for everyone (that is the consensus property).
  const std::size_t d = 64, c_size = 8;
  TopKCConfig config;
  config.dimension = d;
  config.world_size = 2;
  config.chunk_size = c_size;
  config.num_top_chunks = 1;
  config.error_feedback = false;
  auto c = make_topkc(config);
  std::vector<std::vector<float>> grads(2, std::vector<float>(d, 0.0f));
  // Worker 0: chunk 1 has norm^2 = 8*4 = 32. Worker 1: chunk 2 norm^2 =
  // 8*9=72. Summed: chunk 1 = 32, chunk 2 = 72 -> chunk 2 wins.
  for (std::size_t i = c_size; i < 2 * c_size; ++i) grads[0][i] = 2.0f;
  for (std::size_t i = 2 * c_size; i < 3 * c_size; ++i) grads[1][i] = 3.0f;
  std::vector<float> out(d);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  EXPECT_EQ(out[c_size], 0.0f);          // chunk 1 dropped
  EXPECT_NEAR(out[2 * c_size], 3.0f, 0.01f);  // chunk 2 kept
}

TEST(TopKC, PartialLastChunkHandled) {
  TopKCConfig config;
  config.dimension = 70;  // 4 chunks of 16 + one of 6
  config.world_size = 2;
  config.chunk_size = 16;
  config.num_top_chunks = 5;
  config.error_feedback = false;
  auto c = make_topkc(config);
  const auto grads = random_grads(2, 70, 3);
  std::vector<float> out(70);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);  // must not crash / corrupt
  for (std::size_t i = 0; i < 70; ++i) {
    const double sum = grads[0][i] + grads[1][i];
    EXPECT_NEAR(out[i], sum, std::fabs(sum) / 256.0 + 1e-2) << i;
  }
}

TEST(TopKC, LocalityBeatsPermutationOnStructuredGradients) {
  // Table 4's claim: on gradients with spatial locality, TopKC has lower
  // vNMSE than TopKC over permuted coordinates.
  SyntheticGradConfig sgc;
  sgc.layout = make_transformer_like_layout(1 << 16);
  sgc.world_size = 4;
  sgc.locality = 0.97;
  SyntheticGradients source(sgc);
  const std::size_t d = source.dimension();

  TopKCConfig base;
  base.dimension = d;
  base.world_size = 4;
  base.chunk_size = 64;
  base.num_top_chunks = TopKCConfig::j_for_bits(d, 64, 2.0);
  base.error_feedback = false;
  auto plain = make_topkc(base);
  base.permute = true;
  auto permuted = make_topkc(base);
  EXPECT_EQ(permuted->name(), "TopKC Permutation");

  const auto r_plain = measure_vnmse(*plain, source, 5);
  const auto r_perm = measure_vnmse(*permuted, source, 5);
  EXPECT_LT(r_plain.mean, r_perm.mean * 0.9);
}

TEST(TopKC, PermutationRoundTripsCoordinates) {
  // With all chunks selected, the permuted pipeline must still return the
  // plain sum (permutation is inverted on decode).
  const std::size_t d = 128;
  TopKCConfig config;
  config.dimension = d;
  config.world_size = 2;
  config.chunk_size = 16;
  config.num_top_chunks = 8;  // everything
  config.error_feedback = false;
  config.permute = true;
  auto c = make_topkc(config);
  const auto grads = random_grads(2, d, 5);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  for (std::size_t i = 0; i < d; ++i) {
    const double sum = grads[0][i] + grads[1][i];
    EXPECT_NEAR(out[i], sum, std::fabs(sum) / 256.0 + 1e-2);
  }
}

TEST(TopKC, ErrorFeedbackRecoversDroppedChunks) {
  const std::size_t d = 64, c_size = 8;
  TopKCConfig config;
  config.dimension = d;
  config.world_size = 1;
  config.chunk_size = c_size;
  config.num_top_chunks = 1;
  config.error_feedback = true;
  auto c = make_topkc(config);
  // Chunk 0 slightly hotter than chunk 1: round 1 sends chunk 0; chunk 1
  // accumulates and wins round 2.
  std::vector<std::vector<float>> grads(1, std::vector<float>(d, 0.0f));
  for (std::size_t i = 0; i < c_size; ++i) grads[0][i] = 1.0f;
  for (std::size_t i = c_size; i < 2 * c_size; ++i) grads[0][i] = 0.8f;
  std::vector<float> out(d);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  EXPECT_GT(out[0], 0.5f);
  EXPECT_EQ(out[c_size], 0.0f);
  c->aggregate(views, out, 1);
  EXPECT_NEAR(out[c_size], 1.6f, 0.02f);  // 0.8 + 0.8 from memory
}

TEST(TopKC, MoreBitsLowerVnmse) {
  SyntheticGradConfig sgc;
  sgc.layout = make_transformer_like_layout(1 << 15);
  sgc.world_size = 2;
  SyntheticGradients source(sgc);
  const std::size_t d = source.dimension();
  double prev = 1e9;
  for (double b : {0.5, 2.0, 8.0}) {
    TopKCConfig config;
    config.dimension = d;
    config.world_size = 2;
    config.chunk_size = TopKCConfig::default_chunk_size(b);
    config.num_top_chunks =
        TopKCConfig::j_for_bits(d, config.chunk_size, b);
    config.error_feedback = false;
    auto c = make_topkc(config);
    const auto report = measure_vnmse(*c, source, 3);
    EXPECT_LT(report.mean, prev) << b;
    prev = report.mean;
  }
}

}  // namespace
}  // namespace gcs::core
