// Tests for core/topk_compressor: selection semantics, wire budget
// (b = 48K/d), all-gather aggregation, and error feedback across rounds.
#include "core/topk_compressor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/vnmse.h"

namespace gcs::core {
namespace {

std::vector<std::vector<float>> random_grads(int n, std::size_t d,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> grads(n, std::vector<float>(d));
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[w]) v = static_cast<float>(rng.next_gaussian());
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

TEST(TopKConfig, KForBitsMatchesPaperFormula) {
  // b = 48 K / d  =>  K = d b / 48.
  EXPECT_EQ(TopKConfig::k_for_bits(48000, 8.0), 8000u);
  EXPECT_EQ(TopKConfig::k_for_bits(48000, 0.5), 500u);
  // Delta format: 32 bits per entry.
  EXPECT_EQ(TopKConfig::k_for_bits(32000, 2.0, true), 2000u);
  EXPECT_GE(TopKConfig::k_for_bits(10, 0.001), 1u);  // clamped to >= 1
}

TEST(TopK, PathIsAllGather) {
  TopKConfig config;
  config.dimension = 100;
  config.world_size = 2;
  config.k = 10;
  auto c = make_topk(config);
  EXPECT_EQ(c->path(), AggregationPath::kAllGather);
  EXPECT_EQ(c->name(), "TopK");
  EXPECT_EQ(c->world_size(), 2);
}

TEST(TopK, MeasuredBitsMatchFormula) {
  TopKConfig config;
  config.dimension = 4800;
  config.world_size = 4;
  config.k = 400;  // b = 48*400/4800 = 4 bits/coordinate
  config.error_feedback = false;
  auto c = make_topk(config);
  const auto grads = random_grads(4, 4800, 1);
  std::vector<float> out(4800);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  // + the 4-byte count header (amortizes away at paper scale).
  EXPECT_NEAR(stats.bits_per_coordinate(4800), 4.0, 0.05);
}

TEST(TopK, AggregateIsUnionOfPerWorkerSelections) {
  // With one dominant coordinate per worker, the aggregate holds each
  // worker's value at its own hot index.
  TopKConfig config;
  config.dimension = 40;
  config.world_size = 2;
  config.k = 1;
  config.error_feedback = false;
  auto c = make_topk(config);
  std::vector<std::vector<float>> grads(2, std::vector<float>(40, 0.01f));
  grads[0][3] = 8.0f;
  grads[1][17] = -9.0f;
  std::vector<float> out(40);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  EXPECT_EQ(out[3], 8.0f);
  EXPECT_EQ(out[17], -9.0f);
  for (std::size_t i = 0; i < 40; ++i) {
    if (i != 3 && i != 17) EXPECT_EQ(out[i], 0.0f) << i;
  }
}

TEST(TopK, OverlappingSelectionsSum) {
  TopKConfig config;
  config.dimension = 10;
  config.world_size = 3;
  config.k = 1;
  config.error_feedback = false;
  auto c = make_topk(config);
  std::vector<std::vector<float>> grads(3, std::vector<float>(10, 0.0f));
  for (auto& g : grads) g[5] = 2.0f;
  std::vector<float> out(10);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  EXPECT_EQ(out[5], 6.0f);
}

TEST(TopK, ErrorFeedbackRecoversDroppedMass) {
  // A coordinate too small to be selected in round 1 accumulates in the
  // memory and eventually gets transmitted.
  TopKConfig config;
  config.dimension = 4;
  config.world_size = 1;
  config.k = 1;
  config.error_feedback = true;
  auto c = make_topk(config);
  // grad: [1.0, 0.6, 0, 0] each round; k=1 keeps index 0 in round 1;
  // round 2's compensated vector is [1.0, 1.2, 0, 0] -> index 1 wins.
  std::vector<std::vector<float>> grads(1, {1.0f, 0.6f, 0.0f, 0.0f});
  std::vector<float> out(4);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  EXPECT_GT(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
  c->aggregate(views, out, 1);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_NEAR(out[1], 1.2f, 1e-2);
}

TEST(TopK, EfReducesLongRunError) {
  // Across many rounds, EF keeps the *cumulative* aggregate close to the
  // cumulative gradient sum; without EF the small coordinates are lost
  // forever.
  const std::size_t d = 256;
  TopKConfig with_ef{d, 2, 16, true, false};
  TopKConfig no_ef{d, 2, 16, false, false};
  auto c_ef = make_topk(with_ef);
  auto c_no = make_topk(no_ef);
  std::vector<double> cum_true(d, 0.0), cum_ef(d, 0.0), cum_no(d, 0.0);
  std::vector<float> out(d);
  for (int r = 0; r < 30; ++r) {
    auto grads = random_grads(2, d, 100 + r);
    const auto views = views_of(grads);
    for (std::size_t i = 0; i < d; ++i) {
      cum_true[i] += grads[0][i] + grads[1][i];
    }
    c_ef->aggregate(views, out, r);
    for (std::size_t i = 0; i < d; ++i) cum_ef[i] += out[i];
    c_no->aggregate(views, out, r);
    for (std::size_t i = 0; i < d; ++i) cum_no[i] += out[i];
  }
  double err_ef = 0.0, err_no = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    err_ef += (cum_ef[i] - cum_true[i]) * (cum_ef[i] - cum_true[i]);
    err_no += (cum_no[i] - cum_true[i]) * (cum_no[i] - cum_true[i]);
  }
  EXPECT_LT(err_ef, err_no * 0.6);
}

TEST(TopK, DeltaFormatProducesSameAggregateCheaper) {
  const std::size_t d = 2048;
  TopKConfig plain{d, 2, 128, false, false};
  TopKConfig delta{d, 2, 128, false, true};
  auto c1 = make_topk(plain);
  auto c2 = make_topk(delta);
  const auto grads = random_grads(2, d, 9);
  const auto views = views_of(grads);
  std::vector<float> out1(d), out2(d);
  const auto s1 = c1->aggregate(views, out1, 0);
  const auto s2 = c2->aggregate(views, out2, 0);
  EXPECT_EQ(out1, out2);
  EXPECT_LT(s2.payload_bytes, s1.payload_bytes);
}

TEST(TopK, ResetClearsMemory) {
  TopKConfig config{8, 1, 1, true, false};
  auto c = make_topk(config);
  std::vector<std::vector<float>> grads(1, {1.0f, 0.9f, 0, 0, 0, 0, 0, 0});
  std::vector<float> out(8);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  c->reset();
  // After reset the same input picks index 0 again (no residual boost).
  c->aggregate(views, out, 1);
  EXPECT_GT(out[0], 0.0f);
  EXPECT_EQ(out[1], 0.0f);
}

TEST(TopK, MoreBitsLowerVnmse) {
  const std::size_t d = 4096;
  double prev = 1e9;
  for (double b : {0.5, 2.0, 8.0}) {
    TopKConfig config{d, 4, TopKConfig::k_for_bits(d, b), false, false};
    auto c = make_topk(config);
    const auto grads = random_grads(4, d, 77);
    const auto views = views_of(grads);
    std::vector<float> out(d);
    c->aggregate(views, out, 0);
    const double err =
        vnmse(out, std::span<const std::span<const float>>(views));
    EXPECT_LT(err, prev) << b;
    prev = err;
  }
}

}  // namespace
}  // namespace gcs::core
