// Tests for tensor/vecops including matmul identities.
#include "tensor/vecops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace gcs {
namespace {

TEST(VecOps, Axpy) {
  std::vector<float> x{1.0f, 2.0f}, y{10.0f, 20.0f};
  axpy(2.0f, x, y);
  EXPECT_EQ(y[0], 12.0f);
  EXPECT_EQ(y[1], 24.0f);
}

TEST(VecOps, Scale) {
  std::vector<float> x{2.0f, -4.0f};
  scale(x, 0.5f);
  EXPECT_EQ(x[0], 1.0f);
  EXPECT_EQ(x[1], -2.0f);
}

TEST(VecOps, DotAndNorms) {
  std::vector<float> a{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(squared_norm(a), 25.0);
  EXPECT_DOUBLE_EQ(norm(a), 5.0);
}

TEST(VecOps, AddSub) {
  std::vector<float> a{1.0f, 2.0f}, b{3.0f, 5.0f}, out(2);
  add(a, b, out);
  EXPECT_EQ(out[1], 7.0f);
  sub(b, a, out);
  EXPECT_EQ(out[1], 3.0f);
}

TEST(VecOps, ArgmaxAbs) {
  std::vector<float> a{1.0f, -5.0f, 4.0f};
  EXPECT_EQ(argmax_abs(a), 1u);
  EXPECT_EQ(argmax_abs(std::vector<float>{}), 0u);
}

TEST(VecOps, Mse) {
  std::vector<float> a{1.0f, 2.0f}, b{2.0f, 4.0f};
  EXPECT_DOUBLE_EQ(mse(a, b), (1.0 + 4.0) / 2.0);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(MatMul, SmallKnownProduct) {
  // A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50]
  std::vector<float> a{1, 2, 3, 4}, b{5, 6, 7, 8}, c(4);
  matmul(a, b, c, 2, 2, 2);
  EXPECT_EQ(c[0], 19.0f);
  EXPECT_EQ(c[1], 22.0f);
  EXPECT_EQ(c[2], 43.0f);
  EXPECT_EQ(c[3], 50.0f);
}

TEST(MatMul, IdentityPreserves) {
  std::vector<float> eye{1, 0, 0, 1};
  std::vector<float> b{2, 3, 4, 5}, c(4);
  matmul(eye, b, c, 2, 2, 2);
  EXPECT_EQ(c, b);
}

TEST(MatMulAt, AgreesWithExplicitTranspose) {
  Rng rng(3);
  const std::size_t k = 7, m = 5, n = 4;
  std::vector<float> a(k * m), b(k * n);
  for (auto& v : a) v = static_cast<float>(rng.next_gaussian());
  for (auto& v : b) v = static_cast<float>(rng.next_gaussian());
  // Explicit A^T (m x k).
  std::vector<float> at(m * k);
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < m; ++j) at[j * k + i] = a[i * m + j];
  }
  std::vector<float> c1(m * n), c2(m * n);
  matmul(at, b, c1, m, k, n);
  matmul_at(a, b, c2, m, k, n);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-4f) << i;
  }
}

TEST(MatMul, RectangularShapes) {
  // (1x3) * (3x2)
  std::vector<float> a{1, 2, 3}, b{1, 0, 0, 1, 1, 1}, c(2);
  matmul(a, b, c, 1, 3, 2);
  EXPECT_EQ(c[0], 1.0f + 0.0f + 3.0f);
  EXPECT_EQ(c[1], 0.0f + 2.0f + 3.0f);
}

TEST(MatMul, SizeCheckThrows) {
  std::vector<float> a(3), b(4), c(4);
  EXPECT_THROW(matmul(a, b, c, 2, 2, 2), std::logic_error);
}

}  // namespace
}  // namespace gcs
