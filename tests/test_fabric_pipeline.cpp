// Integration: the compression pipelines' collective calls, executed over
// the REAL threaded fabric instead of the local reference aggregators,
// produce bit-identical results. This closes the loop on the claim that
// local_* references are faithful stand-ins on the training hot path.
#include <gtest/gtest.h>

#include <cstring>

#include "comm/fabric.h"
#include "comm/group.h"
#include "common/rng.h"
#include "numeric/half.h"
#include "quant/quantize.h"
#include "quant/satint.h"
#include "sparse/chunks.h"

namespace gcs {
namespace {

using gcs::ByteBuffer;

std::vector<std::vector<float>> random_grads(int n, std::size_t d,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> grads(n, std::vector<float>(d));
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[w]) v = static_cast<float>(rng.next_gaussian());
  }
  return grads;
}

// Runs the TopKC wire protocol end-to-end on the threaded fabric: FP16
// norm consensus -> local top-J selection -> FP16 chunk all-reduce.
TEST(FabricPipeline, TopKCConsensusAndAggregationOverThreads) {
  const int n = 4;
  const std::size_t d = 1024, c = 32, j = 8;
  const auto grads = random_grads(n, d, 1);

  comm::Fabric fabric(n);
  const auto fp16_sum = comm::make_fp16_sum();
  std::vector<std::vector<std::uint32_t>> selections(n);
  std::vector<ByteBuffer> reduced(n);

  comm::run_workers(fabric, [&](comm::Communicator& comm_handle) {
    const auto rank = static_cast<std::size_t>(comm_handle.rank());
    // Stage 1: FP16 chunk-norm all-reduce.
    std::vector<float> norms(num_chunks(d, c));
    chunk_squared_norms(grads[rank], c, norms);
    ByteBuffer norm_payload;
    ByteWriter w(norm_payload);
    for (float s : norms) w.put<std::uint16_t>(float_to_half_bits(s));
    comm::ring_all_reduce(comm_handle, norm_payload, *fp16_sum);
    // Stage 2: local (consensus) selection from identical scores.
    std::vector<float> scores(norms.size());
    const auto* bits =
        reinterpret_cast<const std::uint16_t*>(norm_payload.data());
    for (std::size_t i = 0; i < scores.size(); ++i) {
      scores[i] = half_bits_to_float(bits[i]);
    }
    selections[rank] = select_top_chunks(scores, j);
    // Stage 3: FP16 all-reduce of the selected chunks.
    std::vector<float> gathered(j * c);
    gather_chunks(grads[rank], c, selections[rank], gathered);
    ByteBuffer payload;
    ByteWriter pw(payload);
    for (float v : gathered) pw.put<std::uint16_t>(float_to_half_bits(v));
    comm::ring_all_reduce(comm_handle, payload, *fp16_sum);
    reduced[rank] = std::move(payload);
  });

  // Every rank selected the same chunks and holds the same payload.
  for (int w = 1; w < n; ++w) {
    EXPECT_EQ(selections[w], selections[0]);
    EXPECT_EQ(reduced[w], reduced[0]);
  }
  // And the values match an exact FP32 aggregation within FP16 precision.
  const auto* bits =
      reinterpret_cast<const std::uint16_t*>(reduced[0].data());
  std::vector<float> gathered(j * c);
  for (std::size_t slot = 0; slot < j * c; ++slot) {
    const std::size_t coord =
        static_cast<std::size_t>(selections[0][slot / c]) * c + slot % c;
    double sum = 0.0;
    for (const auto& g : grads) sum += g[coord];
    EXPECT_NEAR(half_bits_to_float(bits[slot]), sum,
                std::abs(sum) / 128.0 + 1e-2);
  }
}

// Runs THC's wire protocol over threads: min/max range consensus followed
// by a saturating q-bit ring all-reduce of centered levels.
TEST(FabricPipeline, ThcRangeConsensusAndSatReduceOverThreads) {
  const int n = 4;
  const unsigned q = 4;
  const std::size_t d = 512;
  const auto grads = random_grads(n, d, 2);

  comm::Fabric fabric(n);
  const auto min_op = comm::make_fp32_min();
  const auto max_op = comm::make_fp32_max();
  SatStats stats;
  const auto sat_op = comm::make_sat_int(q, &stats);
  std::vector<ByteBuffer> reduced(n);
  std::vector<QuantRange> shared_ranges(n);

  comm::run_workers(fabric, [&](comm::Communicator& comm_handle) {
    const auto rank = static_cast<std::size_t>(comm_handle.rank());
    const auto range = compute_range(grads[rank]);
    ByteBuffer lo(sizeof(float)), hi(sizeof(float));
    std::memcpy(lo.data(), &range.lo, sizeof(float));
    std::memcpy(hi.data(), &range.hi, sizeof(float));
    comm::ring_all_reduce(comm_handle, lo, *min_op);
    comm::ring_all_reduce(comm_handle, hi, *max_op);
    QuantRange shared;
    std::memcpy(&shared.lo, lo.data(), sizeof(float));
    std::memcpy(&shared.hi, hi.data(), sizeof(float));
    shared_ranges[rank] = shared;

    Rng rng(derive_seed(7, rank));
    std::vector<std::uint16_t> levels(d);
    quantize_stochastic(grads[rank], shared, q, rng, levels);
    std::vector<std::int32_t> lanes(d);
    const std::int32_t offset = 1 << (q - 1);
    for (std::size_t i = 0; i < d; ++i) {
      lanes[i] = static_cast<std::int32_t>(levels[i]) - offset;
    }
    ByteBuffer payload = pack_signed_lanes(lanes, q);
    comm::ring_all_reduce(comm_handle, payload, *sat_op);
    reduced[rank] = std::move(payload);
  });

  // All ranks agree on the shared range and the reduced payload.
  for (int w = 1; w < n; ++w) {
    EXPECT_EQ(shared_ranges[w].lo, shared_ranges[0].lo);
    EXPECT_EQ(shared_ranges[w].hi, shared_ranges[0].hi);
    EXPECT_EQ(reduced[w], reduced[0]);
  }
  // Decoded sums approximate the FP32 truth within quantization error.
  const auto sums = unpack_signed_lanes(reduced[0], d, q);
  const float step =
      shared_ranges[0].width() / static_cast<float>((1u << q) - 1u);
  std::size_t close = 0;
  for (std::size_t i = 0; i < d; ++i) {
    double truth = 0.0;
    for (const auto& g : grads) truth += g[i];
    const float decoded = dequantize_level_sum(
        sums[i] + n * (1 << (q - 1)), n, shared_ranges[0], q);
    if (std::abs(decoded - truth) <= n * step) ++close;
  }
  // Saturation may clip a few lanes; the vast majority must decode within
  // the n-fold quantization step.
  EXPECT_GT(static_cast<double>(close) / d, 0.95);
}

}  // namespace
}  // namespace gcs
