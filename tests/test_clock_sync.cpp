// Tests for measure/clock_sync: NTP-style offset recovery over the
// threaded fabric with planted clock errors. The injectable local_clock
// lets each rank lie about its time in a controlled way; the assertions
// are the honest error bounds (asymmetry <= rtt/2), not exact equality.
#include "measure/clock_sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "comm/fabric.h"
#include "comm/group.h"
#include "comm/transport_decorators.h"

namespace gcs::measure {
namespace {

constexpr int kWorld = 4;

ClockSyncOptions options_with_clock(std::function<double()> clock) {
  ClockSyncOptions o;
  o.local_clock = std::move(clock);
  return o;
}

TEST(ClockSync, RankZeroIsIdentityAndPeersStayWithinRtt) {
  comm::Fabric fabric(kWorld);
  std::vector<ClockModel> models(kWorld);
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    models[static_cast<std::size_t>(comm.rank())] = sync_clocks(comm);
  });

  EXPECT_EQ(models[0].offset_s, 0.0);
  EXPECT_EQ(models[0].drift, 0.0);
  for (int r = 1; r < kWorld; ++r) {
    const ClockModel& m = models[static_cast<std::size_t>(r)];
    EXPECT_EQ(m.rank, r);
    EXPECT_GT(m.rtt_s, 0.0);
    // All ranks share one true clock here, so the estimated offset IS the
    // estimation error — bounded by the winning probe's asymmetry.
    EXPECT_LE(std::abs(m.offset_s), m.rtt_s / 2 + 1e-6)
        << "rank " << r << " offset " << m.offset_s << " rtt " << m.rtt_s;
  }
}

TEST(ClockSync, RecoversPlantedConstantOffsets) {
  // Rank r's clock reads 0.25 * r seconds ahead of true time. A constant
  // shift cancels out of the rtt, so recovery error is exactly the path
  // asymmetry of the winning probe: |offset + planted| <= rtt / 2.
  comm::Fabric fabric(kWorld);
  std::vector<ClockModel> models(kWorld);
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    const double planted = 0.25 * comm.rank();
    models[static_cast<std::size_t>(comm.rank())] = sync_clocks(
        comm, options_with_clock([planted] {
          return monotonic_now_s() + planted;
        }));
  });

  for (int r = 1; r < kWorld; ++r) {
    const ClockModel& m = models[static_cast<std::size_t>(r)];
    const double planted = 0.25 * r;
    EXPECT_LE(std::abs(m.offset_s + planted), m.rtt_s / 2 + 1e-6)
        << "rank " << r << " recovered " << m.offset_s << " for planted "
        << -planted << " (rtt " << m.rtt_s << ")";
    // And the model maps a local instant back onto the reference within
    // the same bound.
    const double local = monotonic_now_s() + planted;
    EXPECT_LE(std::abs(m.to_reference(local) - (local - planted)),
              m.rtt_s / 2 + 1e-6);
  }
}

/// Delays only the ping direction (sends into rank 0), making the probe
/// path asymmetric on purpose.
class PingDelayTransport final : public comm::ForwardingTransport {
 public:
  PingDelayTransport(comm::Transport& inner, std::chrono::microseconds d)
      : comm::ForwardingTransport(inner), delay_(d) {}

  void send(int src, int dst, std::uint64_t tag,
            ByteBuffer payload) override {
    if (dst == 0) std::this_thread::sleep_for(delay_);
    comm::ForwardingTransport::send(src, dst, tag, std::move(payload));
  }

 private:
  std::chrono::microseconds delay_;
};

TEST(ClockSync, AsymmetricPathErrorStaysWithinReportedRttHalf) {
  // 2 ms extra on every ping, nothing on the pong: the classic NTP
  // failure mode. The estimate is biased (by ~asymmetry/2), but the
  // reported rtt absorbs the asymmetry, so the rtt/2 bound must hold —
  // that is what makes rtt_s an honest error bar.
  comm::Fabric fabric(2);
  PingDelayTransport delayed(fabric, std::chrono::microseconds(2000));
  ClockModel peer;
  comm::run_workers(delayed, [&](comm::Communicator& comm) {
    const ClockModel m = sync_clocks(comm);
    if (comm.rank() == 1) peer = m;
  });

  EXPECT_GE(peer.rtt_s, 2e-3);  // the injected delay is inside the rtt
  EXPECT_LE(std::abs(peer.offset_s), peer.rtt_s / 2 + 1e-6);
  // The bias is real, not noise: the ping-side delay pushes the estimate
  // positive by about half the asymmetry.
  EXPECT_GT(peer.offset_s, 0.5e-3);
}

TEST(ClockSync, RefreshEstimatesPlantedDrift) {
  // Rank 1's clock runs fast by 1000 ppm. Two refreshes ~120 ms apart
  // give the slope; probe noise contributes at most rtt/dt, far below
  // the planted rate on an in-process fabric.
  constexpr double kRate = 1e-3;
  comm::Fabric fabric(2);
  ClockModel peer;
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    const double anchor = monotonic_now_s();
    ClockSyncOptions o;
    if (comm.rank() == 1) {
      o.local_clock = [anchor] {
        const double t = monotonic_now_s();
        return t + kRate * (t - anchor);
      };
    }
    ClockSync sync(o);
    sync.refresh(comm);
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    const ClockModel m = sync.refresh(comm);
    if (comm.rank() == 1) peer = m;
  });

  // to_reference must cancel the rate: drift ~ -kRate.
  EXPECT_LT(std::abs(peer.drift + kRate), 5e-4)
      << "estimated drift " << peer.drift << " for planted " << kRate;
}

TEST(ClockSync, InsaneSlopeIsRejectedAsArtefact) {
  // 1% per second is no quartz crystal — the drift estimator must treat
  // it as a measurement artefact and keep the previous (zero) estimate.
  comm::Fabric fabric(2);
  ClockModel peer;
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    const double anchor = monotonic_now_s();
    ClockSyncOptions o;
    if (comm.rank() == 1) {
      o.local_clock = [anchor] {
        const double t = monotonic_now_s();
        return t + 1e-2 * (t - anchor);
      };
    }
    ClockSync sync(o);
    sync.refresh(comm);
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    const ClockModel m = sync.refresh(comm);
    if (comm.rank() == 1) peer = m;
  });

  EXPECT_EQ(peer.drift, 0.0);
}

}  // namespace
}  // namespace gcs::measure
