// Determinism tests for the chunked transport layer: ring / tree / PS
// all-reduce produce bit-identical results for the non-associative ops
// (FP16 sum, saturating add) across world sizes 2-8, on the threaded
// fabric and against the local references — and every chunked variant
// matches its monolithic counterpart byte-for-byte (the transport layer's
// bit-identity contract, which is what lets the AggregationPipeline chunk
// payloads freely).
#include "comm/chunked_collectives.h"

#include <gtest/gtest.h>

#include <cstring>

#include "comm/fabric.h"
#include "comm/group.h"
#include "common/rng.h"
#include "numeric/half.h"
#include "quant/satint.h"

namespace gcs::comm {
namespace {

std::vector<ByteBuffer> fp16_inputs(int n, std::size_t count,
                                    std::uint64_t seed) {
  std::vector<ByteBuffer> inputs;
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    ByteBuffer buf;
    ByteWriter writer(buf);
    for (std::size_t i = 0; i < count; ++i) {
      writer.put<std::uint16_t>(float_to_half_bits(
          static_cast<float>(rng.next_gaussian()) * 64.0f));
    }
    inputs.push_back(std::move(buf));
  }
  return inputs;
}

std::vector<ByteBuffer> sat4_inputs(int n, std::size_t lanes,
                                    std::uint64_t seed) {
  std::vector<ByteBuffer> inputs;
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    std::vector<std::int32_t> ls(lanes);
    for (auto& l : ls) {
      l = static_cast<std::int32_t>(rng.next_below(15)) - 7;
    }
    inputs.push_back(pack_signed_lanes(ls, 4));
  }
  return inputs;
}

template <typename Body>
std::vector<ByteBuffer> run_threaded(const std::vector<ByteBuffer>& inputs,
                                     Body body) {
  const auto n = static_cast<int>(inputs.size());
  Fabric fabric(n);
  std::vector<ByteBuffer> results(inputs.begin(), inputs.end());
  run_workers(fabric, [&](Communicator& comm) {
    body(comm, results[static_cast<std::size_t>(comm.rank())]);
  });
  return results;
}

struct OpCase {
  const char* label;
  std::unique_ptr<ReduceOp> (*make)();
  std::vector<ByteBuffer> (*inputs)(int, std::size_t, std::uint64_t);
};

std::unique_ptr<ReduceOp> make_fp16() { return make_fp16_sum(); }
std::unique_ptr<ReduceOp> make_sat4() { return make_sat_int(4, nullptr); }

const OpCase kOpCases[] = {
    {"fp16-sum", &make_fp16, &fp16_inputs},
    {"sat4-add", &make_sat4, &sat4_inputs},
};

class ChunkedDeterminismTest : public ::testing::TestWithParam<int> {};

// The satellite determinism matrix: for world sizes 2-8 and both
// non-associative ops, ring / tree / PS agree with their local references
// bit-for-bit, and the chunked variants agree with the monolithic ones
// byte-for-byte — at several chunk sizes, including misaligned requests.
TEST_P(ChunkedDeterminismTest, RingTreePsChunkedMatchMonolithicBitwise) {
  const int n = GetParam();
  const std::size_t count = 90;  // elements; intentionally not 2^k
  for (const auto& op_case : kOpCases) {
    const auto op = op_case.make();
    const auto inputs = op_case.inputs(n, count, 1000 + n);
    const std::size_t total = inputs[0].size();
    for (std::size_t chunk_bytes : {std::size_t{0}, std::size_t{7},
                                    std::size_t{16}, std::size_t{64},
                                    total + 100}) {
      const auto chunks =
          chunk_payload(total, chunk_bytes, op->granularity());

      // Ring: threaded chunked == threaded monolithic == local reference.
      const auto mono_ring = run_threaded(
          inputs, [&](Communicator& comm, ByteBuffer& data) {
            ring_all_reduce(comm, data, *op);
          });
      const auto chunked_ring = run_threaded(
          inputs, [&](Communicator& comm, ByteBuffer& data) {
            chunked_ring_all_reduce(comm, data, chunks, *op);
          });
      const auto local_ring =
          local_chunked_ring_all_reduce(inputs, chunks, *op);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(chunked_ring[static_cast<std::size_t>(r)],
                  mono_ring[static_cast<std::size_t>(r)])
            << op_case.label << " ring rank " << r << " chunk "
            << chunk_bytes;
        EXPECT_EQ(chunked_ring[static_cast<std::size_t>(r)], local_ring)
            << op_case.label << " ring-vs-local rank " << r;
      }

      // Tree.
      const auto mono_tree = run_threaded(
          inputs, [&](Communicator& comm, ByteBuffer& data) {
            tree_all_reduce(comm, data, *op);
          });
      const auto chunked_tree = run_threaded(
          inputs, [&](Communicator& comm, ByteBuffer& data) {
            chunked_tree_all_reduce(comm, data, chunks, *op);
          });
      const auto local_tree =
          local_chunked_tree_all_reduce(inputs, chunks, *op);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(chunked_tree[static_cast<std::size_t>(r)],
                  mono_tree[static_cast<std::size_t>(r)])
            << op_case.label << " tree rank " << r;
        EXPECT_EQ(chunked_tree[static_cast<std::size_t>(r)], local_tree)
            << op_case.label << " tree-vs-local rank " << r;
      }

      // Parameter server.
      const auto mono_ps = run_threaded(
          inputs, [&](Communicator& comm, ByteBuffer& data) {
            ps_aggregate(comm, data, *op, 0);
          });
      const auto chunked_ps = run_threaded(
          inputs, [&](Communicator& comm, ByteBuffer& data) {
            chunked_ps_aggregate(comm, data, chunks, *op, 0);
          });
      const auto local_ps =
          local_chunked_ps_aggregate(inputs, chunks, *op, 0);
      for (int r = 0; r < n; ++r) {
        EXPECT_EQ(chunked_ps[static_cast<std::size_t>(r)],
                  mono_ps[static_cast<std::size_t>(r)])
            << op_case.label << " ps rank " << r;
        EXPECT_EQ(chunked_ps[static_cast<std::size_t>(r)], local_ps)
            << op_case.label << " ps-vs-local rank " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, ChunkedDeterminismTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(ChunkedAllGather, MatchesMonolithicAllGather) {
  const int n = 5;
  const std::size_t bytes = 123;
  std::vector<ByteBuffer> inputs;
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(77, w));
    ByteBuffer buf(bytes);
    for (auto& b : buf) {
      b = static_cast<std::byte>(rng.next_below(256));
    }
    inputs.push_back(std::move(buf));
  }
  const auto chunks = chunk_payload(bytes, 32, 1);
  Fabric f1(n), f2(n);
  std::vector<std::vector<ByteBuffer>> mono(n), chunked(n);
  run_workers(f1, [&](Communicator& comm) {
    mono[static_cast<std::size_t>(comm.rank())] = all_gather(
        comm, inputs[static_cast<std::size_t>(comm.rank())]);
  });
  run_workers(f2, [&](Communicator& comm) {
    chunked[static_cast<std::size_t>(comm.rank())] = chunked_all_gather(
        comm, inputs[static_cast<std::size_t>(comm.rank())], chunks);
  });
  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(chunked[static_cast<std::size_t>(r)],
              mono[static_cast<std::size_t>(r)])
        << "rank " << r;
  }
}

TEST(ChunkedRing, WireVolumeMatchesMonolithic) {
  // Chunking changes the message granularity, never the total volume.
  const int n = 4;
  const std::size_t payload = 400;
  const auto op = make_fp32_sum();
  const auto inputs = fp16_inputs(n, payload / 2, 5);
  const auto chunks = chunk_payload(payload, 96, op->granularity());
  Fabric fabric(n);
  std::vector<ByteBuffer> bufs(inputs.begin(), inputs.end());
  run_workers(fabric, [&](Communicator& comm) {
    chunked_ring_all_reduce(comm, bufs[static_cast<std::size_t>(comm.rank())],
                            chunks, *op);
  });
  const auto expected_per_worker =
      payload * 2 * (n - 1) / static_cast<std::size_t>(n);
  for (int w = 0; w < n; ++w) {
    EXPECT_EQ(fabric.bytes_sent(w), expected_per_worker);
  }
}

TEST(ChunkPayload, AlignmentAndTiling) {
  // Zero chunk size: one chunk spanning everything.
  auto one = chunk_payload(100, 0, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (ChunkRange{0, 100}));

  // Requested size is rounded down to the granularity.
  auto aligned = chunk_payload(100, 10, 4);
  for (std::size_t i = 0; i + 1 < aligned.size(); ++i) {
    EXPECT_EQ(aligned[i].size % 4, 0u);
  }
  check_chunk_plan(aligned, 100);

  // A chunk request below one lane still makes whole-lane chunks.
  auto tiny = chunk_payload(16, 1, 4);
  for (const auto& c : tiny) EXPECT_EQ(c.size, 4u);
  check_chunk_plan(tiny, 16);

  // Oversized chunk request: single chunk.
  EXPECT_EQ(chunk_payload(64, 1024, 4).size(), 1u);

  // Empty payload: empty plan.
  EXPECT_TRUE(chunk_payload(0, 64, 4).empty());

  // Misaligned totals throw, like ring_block_offsets does.
  EXPECT_THROW(chunk_payload(10, 4, 4), std::logic_error);
}

TEST(ChunkPlan, Validation) {
  EXPECT_NO_THROW(check_chunk_plan(
      std::vector<ChunkRange>{{0, 4}, {4, 4}}, 8));
  EXPECT_THROW(check_chunk_plan(std::vector<ChunkRange>{{0, 4}}, 8),
               std::logic_error);
  EXPECT_THROW(check_chunk_plan(
                   std::vector<ChunkRange>{{0, 4}, {5, 3}}, 8),
               std::logic_error);
}

}  // namespace
}  // namespace gcs::comm
