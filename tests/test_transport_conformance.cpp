// Transport conformance battery: one parameterized suite, three
// implementations.
//
// Every comm::Transport in the tree — the in-process Fabric, the socket
// fabric with the legacy thread-per-peer readers, and the socket fabric
// with the epoll reactor loop — must present the same contract to the
// collectives: per-(src, dst) FIFO ordering, tagged delivery, zero-length
// frames, exact payload byte meters, monotone stats. The reactor rewrite
// (net/reactor.h) is only safe because this suite pins both socket I/O
// engines to one observable behaviour; a divergence here is a transport
// bug, not a test flake.
//
// Contract points that are *deliberately* implementation-specific get
// socket-only tests with a GTEST_SKIP on the in-process fabric:
//   * out-of-order tag receives (Fabric fails loudly on a head-of-line
//     tag mismatch; the socket fabrics buffer and re-order by design),
//   * typed comm::PeerFailure on peer exit and on recv timeout,
//   * stale-epoch rejection and elastic rebuild() semantics,
//   * io_threads() topology (1 reactor loop vs world-1 reader threads).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/fabric.h"
#include "comm/transport.h"
#include "common/bytes.h"
#include "net/launcher.h"
#include "net/socket_fabric.h"

namespace gcs {
namespace {

/// The transport implementations under conformance test.
enum class Impl {
  kFabric,         ///< comm::Fabric, in-process
  kSocketThreads,  ///< net::SocketFabric, legacy reader threads
  kSocketReactor,  ///< net::SocketFabric, epoll reactor loop
};

const char* impl_name(Impl impl) {
  switch (impl) {
    case Impl::kFabric: return "Fabric";
    case Impl::kSocketThreads: return "SocketThreads";
    case Impl::kSocketReactor: return "SocketReactor";
  }
  return "?";
}

bool is_socket(Impl impl) { return impl != Impl::kFabric; }

net::SocketIoMode io_mode(Impl impl) {
  return impl == Impl::kSocketThreads ? net::SocketIoMode::kThreads
                                      : net::SocketIoMode::kReactor;
}

ByteBuffer bytes_of(std::initializer_list<int> xs) {
  ByteBuffer b;
  for (int x : xs) b.push_back(static_cast<std::byte>(x));
  return b;
}

/// Reusable thread barrier (std::barrier without the completion step):
/// conformance bodies use it to quiesce a shared fabric before counter
/// surgery, where a message-based barrier would itself leave messages in
/// flight.
class Barrier {
 public:
  explicit Barrier(int n) : n_(n) {}
  void arrive_and_wait() {
    std::unique_lock lock(mu_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int n_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

/// Extra knobs for the socket harness; ignored by the in-process fabric
/// (which has no deadlines and no membership protocol).
struct WorldOptions {
  int recv_timeout_ms = 20000;
  bool elastic = false;
  int rejoin_window_ms = 2000;
};

/// Runs `body(transport, rank)` once per rank, each rank on its own
/// thread. For kFabric all ranks share one comm::Fabric; for the socket
/// impls each rank constructs its own net::SocketFabric endpoint over a
/// fresh Unix-domain rendezvous with the engine under test. The first
/// exception from any rank is rethrown here (after all threads joined);
/// on the shared fabric it also aborts the world so peers blocked on the
/// failed rank's messages cannot deadlock the test.
void run_world(Impl impl, int n,
               const std::function<void(comm::Transport&, int)>& body,
               const WorldOptions& opts = {}) {
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  const auto note = [&](std::exception_ptr e) {
    std::lock_guard lock(error_mu);
    if (!first_error) first_error = e;
  };

  if (impl == Impl::kFabric) {
    comm::Fabric fabric(n);
    for (int rank = 0; rank < n; ++rank) {
      threads.emplace_back([&, rank] {
        try {
          body(fabric, rank);
        } catch (...) {
          note(std::current_exception());
          fabric.abort();
        }
      });
    }
    for (auto& t : threads) t.join();
  } else {
    const std::string rendezvous = net::unique_unix_rendezvous();
    for (int rank = 0; rank < n; ++rank) {
      threads.emplace_back([&, rank] {
        try {
          net::SocketFabricConfig config;
          config.rendezvous = rendezvous;
          config.world_size = n;
          config.rank = rank;
          config.recv_timeout_ms = opts.recv_timeout_ms;
          config.elastic = opts.elastic;
          config.rejoin_window_ms = opts.rejoin_window_ms;
          config.io = io_mode(impl);
          net::SocketFabric fabric(config);
          body(fabric, rank);
        } catch (...) {
          note(std::current_exception());
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

class TransportConformance : public ::testing::TestWithParam<Impl> {};

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportConformance,
    ::testing::Values(Impl::kFabric, Impl::kSocketThreads,
                      Impl::kSocketReactor),
    [](const ::testing::TestParamInfo<Impl>& info) {
      return impl_name(info.param);
    });

TEST_P(TransportConformance, PerChannelFifoOrdering) {
  // Messages on one (src, dst, tag) stream arrive in send order — the
  // collectives' hop schedules depend on it.
  constexpr int kMessages = 64;
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    if (rank == 0) {
      for (int i = 0; i < kMessages; ++i) t.send(0, 1, 7, bytes_of({i}));
    } else {
      for (int i = 0; i < kMessages; ++i) {
        const comm::Message m = t.recv(1, 0, 7);
        ASSERT_EQ(m.payload, bytes_of({i})) << "message " << i;
      }
    }
  });
}

TEST_P(TransportConformance, DistinctTagsDeliverInSendOrder) {
  // Receiving tags in the order they were sent works on every transport
  // (no reordering is demanded, so even the strict fabric accepts it).
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    if (rank == 0) {
      for (int tag = 1; tag <= 4; ++tag) {
        t.send(0, 1, static_cast<std::uint64_t>(tag), bytes_of({tag * 3}));
      }
    } else {
      for (int tag = 1; tag <= 4; ++tag) {
        const comm::Message m =
            t.recv(1, 0, static_cast<std::uint64_t>(tag));
        EXPECT_EQ(m.tag, static_cast<std::uint64_t>(tag));
        EXPECT_EQ(m.payload, bytes_of({tag * 3}));
      }
    }
  });
}

TEST_P(TransportConformance, OutOfOrderTagRecvBuffersOnSocketFabrics) {
  // The socket fabrics park frames by tag so a recv can wait for a later
  // frame while earlier ones sit buffered. The in-process fabric
  // deliberately fails loudly instead (head-of-line tag mismatch is a
  // protocol bug under its strict contract) — skipped, not conformed.
  if (!is_socket(GetParam())) {
    GTEST_SKIP() << "Fabric's strict tag matching rejects reordering";
  }
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    if (rank == 0) {
      t.send(0, 1, 10, bytes_of({1}));
      t.send(0, 1, 20, bytes_of({2}));
      t.send(0, 1, 30, bytes_of({3}));
    } else {
      EXPECT_EQ(t.recv(1, 0, 30).payload, bytes_of({3}));
      EXPECT_EQ(t.recv(1, 0, 10).payload, bytes_of({1}));
      EXPECT_EQ(t.recv(1, 0, 20).payload, bytes_of({2}));
    }
  });
}

TEST_P(TransportConformance, ZeroLengthPayloadsAreLegalMessages) {
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    if (rank == 0) {
      t.send(0, 1, 5, ByteBuffer{});
      t.send(0, 1, 5, bytes_of({9}));
    } else {
      EXPECT_TRUE(t.recv(1, 0, 5).payload.empty());
      EXPECT_EQ(t.recv(1, 0, 5).payload, bytes_of({9}));
    }
  });
}

TEST_P(TransportConformance, SelfSendLoopsBack) {
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    t.send(rank, rank, 42, bytes_of({rank + 1}));
    EXPECT_EQ(t.recv(rank, rank, 42).payload, bytes_of({rank + 1}));
  });
}

TEST_P(TransportConformance, ByteMetersCountExactPayloadBytes) {
  // Meters are payload bytes (framing overhead excluded), symmetric
  // across the pair, and visible through both the raw counters and the
  // uniform stats() snapshot.
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    const ByteBuffer ping = bytes_of({1, 2, 3});        // 3 bytes
    const ByteBuffer pong = bytes_of({4, 5, 6, 7, 8});  // 5 bytes
    if (rank == 0) {
      t.send(0, 1, 1, ping);
      EXPECT_EQ(t.recv(0, 1, 2).payload, pong);
      EXPECT_EQ(t.bytes_sent(0), 3u);
      EXPECT_EQ(t.bytes_received(0), 5u);
      const comm::TransportStats s = t.stats(0);
      EXPECT_EQ(s.bytes_sent, 3u);
      EXPECT_EQ(s.bytes_received, 5u);
      EXPECT_EQ(s.epoch, 0u);
    } else {
      EXPECT_EQ(t.recv(1, 0, 1).payload, ping);
      t.send(1, 0, 2, pong);
      EXPECT_EQ(t.bytes_sent(1), 5u);
      EXPECT_EQ(t.bytes_received(1), 3u);
    }
  });
}

TEST_P(TransportConformance, StatsAreMonotoneAcrossRounds) {
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    std::uint64_t last_sent = 0, last_recv = 0;
    const int peer = 1 - rank;
    for (int round = 0; round < 5; ++round) {
      const std::uint64_t tag = 100 + static_cast<std::uint64_t>(round);
      t.send(rank, peer, tag, bytes_of({round, round}));
      (void)t.recv(rank, peer, tag);
      const comm::TransportStats s = t.stats(rank);
      EXPECT_GE(s.bytes_sent, last_sent);
      EXPECT_GE(s.bytes_received, last_recv);
      EXPECT_EQ(s.bytes_sent, 2u * static_cast<std::uint64_t>(round + 1));
      last_sent = s.bytes_sent;
      last_recv = s.bytes_received;
    }
  });
}

TEST_P(TransportConformance, ResetCountersZeroesMetersWhenQuiescent) {
  // reset_counters demands quiescence (the shared fabric throws on
  // undelivered messages), so the ranks synchronize on a thread barrier
  // — a message-based barrier would itself be in flight. On the shared
  // fabric one rank resets for everyone; socket endpoints each own
  // their meters.
  const Impl impl = GetParam();
  Barrier barrier(2);
  run_world(impl, 2, [&](comm::Transport& t, int rank) {
    const int peer = 1 - rank;
    t.send(rank, peer, 3, bytes_of({1}));
    (void)t.recv(rank, peer, 3);
    EXPECT_GT(t.bytes_sent(rank), 0u);
    barrier.arrive_and_wait();  // both deliveries complete
    if (is_socket(impl) || rank == 0) t.reset_counters();
    barrier.arrive_and_wait();  // reset visible everywhere
    EXPECT_EQ(t.bytes_sent(rank), 0u);
    EXPECT_EQ(t.bytes_received(rank), 0u);
  });
}

TEST_P(TransportConformance, PerPeerStatsRowsKeyedByOriginalRank) {
  // Socket endpoints meter per-peer traffic; rows are keyed by the
  // peer's original rank and sorted. The in-process fabric tracks only
  // totals (its stats().peers stays empty) — skipped.
  if (!is_socket(GetParam())) {
    GTEST_SKIP() << "Fabric has no per-peer rows";
  }
  run_world(GetParam(), 3, [&](comm::Transport& t, int rank) {
    for (int peer = 0; peer < 3; ++peer) {
      if (peer == rank) continue;
      t.send(rank, peer, 50 + static_cast<std::uint64_t>(rank),
             bytes_of({rank}));
    }
    for (int peer = 0; peer < 3; ++peer) {
      if (peer == rank) continue;
      (void)t.recv(rank, peer, 50 + static_cast<std::uint64_t>(peer));
    }
    const comm::TransportStats s = t.stats(rank);
    ASSERT_EQ(s.peers.size(), 2u);
    int last = -1;
    for (const auto& row : s.peers) {
      EXPECT_GT(row.original_rank, last);  // sorted, no self row
      EXPECT_NE(row.original_rank, rank);
      EXPECT_EQ(row.bytes_sent, 1u);
      EXPECT_EQ(row.bytes_received, 1u);
      last = row.original_rank;
    }
  });
}

TEST_P(TransportConformance, PeerExitSurfacesTypedPeerFailure) {
  // A peer that exits cleanly turns a blocked recv into comm::PeerFailure
  // naming the failed rank — the exact class elastic recovery catches.
  // The in-process fabric has no peer processes to lose — skipped.
  if (!is_socket(GetParam())) {
    GTEST_SKIP() << "Fabric peers cannot exit";
  }
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    if (rank == 1) return;  // fabric destructor closes the connection
    try {
      (void)t.recv(0, 1, 9);
      FAIL() << "recv from an exited peer must throw";
    } catch (const comm::PeerFailure& e) {
      EXPECT_EQ(e.peer(), 1);
    }
  });
}

TEST_P(TransportConformance, RecvTimeoutSurfacesTypedPeerFailure) {
  // A silent (alive but not sending) peer must not hang a recv past the
  // configured deadline; the timeout is a PeerFailure, not a generic
  // Error, so elastic callers treat it like any other peer loss.
  if (!is_socket(GetParam())) {
    GTEST_SKIP() << "Fabric recv has no deadline";
  }
  WorldOptions opts;
  opts.recv_timeout_ms = 300;
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    if (rank == 0) {
      EXPECT_THROW((void)t.recv(0, 1, 9), comm::PeerFailure);
    } else {
      // Stay alive and silent — connection formally open, nothing sent —
      // well past rank 0's deadline, so what rank 0 sees is genuinely
      // the timeout and not this rank's exit EOF.
      (void)t;
      std::this_thread::sleep_for(std::chrono::milliseconds(1200));
    }
  }, opts);
}

TEST_P(TransportConformance, RebuildShrinksWorldAndCountsStaleFrames) {
  // Elastic membership end to end on the public API: rank 2 exits, the
  // survivors catch the PeerFailure, rebuild() into epoch 1 with a dense
  // 2-rank world, and traffic flows in the new epoch. Rank 1 also holds
  // an undelivered epoch-0 frame across the rebuild; teardown must count
  // it as stale-rejected, never deliver it into epoch 1.
  if (!is_socket(GetParam())) {
    GTEST_SKIP() << "Fabric is not elastic";
  }
  WorldOptions opts;
  opts.elastic = true;
  opts.rejoin_window_ms = 1500;
  run_world(GetParam(), 3, [&](comm::Transport& t, int rank) {
    if (rank == 2) {
      // Participate in round 0 so everyone is fully connected, then exit.
      t.send(2, 0, 1, bytes_of({2}));
      t.send(2, 1, 1, bytes_of({2}));
      return;
    }
    (void)t.recv(rank, 2, 1);
    if (rank == 0) {
      // Park a frame at rank 1 that is never received: tag 77 lands
      // first (FIFO), tag 78 is received — so 77 is provably buffered
      // when the epoch tears down.
      t.send(0, 1, 77, bytes_of({7, 7}));
      t.send(0, 1, 78, bytes_of({8}));
    } else {
      EXPECT_EQ(t.recv(1, 0, 78).payload, bytes_of({8}));
    }
    // Rank 2 is gone: the next recv from it fails with the typed error.
    EXPECT_THROW((void)t.recv(rank, 2, 2), comm::PeerFailure);
    const comm::Membership world = t.rebuild(1);
    EXPECT_EQ(world.epoch, 1u);
    ASSERT_EQ(world.world_size(), 2);
    EXPECT_EQ(world.original_ranks, (std::vector<int>{0, 1}));
    // Epoch-1 traffic flows; the parked epoch-0 frame is gone.
    const int peer = 1 - rank;
    t.send(rank, peer, 200, bytes_of({rank + 4}));
    EXPECT_EQ(t.recv(rank, peer, 200).payload, bytes_of({peer + 4}));
    const comm::TransportStats s = t.stats(rank);
    EXPECT_EQ(s.epoch, 1u);
    EXPECT_EQ(s.rebuilds, 1u);
    EXPECT_GE(s.peer_failures, 1u);
    if (rank == 1) EXPECT_GE(s.stale_frames_rejected, 1u);
  }, opts);
}

TEST_P(TransportConformance, IoThreadTopologyMatchesEngine) {
  // The structural point of the reactor: I/O thread count is O(1) in
  // world size, where the legacy engine spends world-1 reader threads.
  if (!is_socket(GetParam())) {
    GTEST_SKIP() << "Fabric has no I/O threads";
  }
  const Impl impl = GetParam();
  constexpr int kWorld = 4;
  run_world(impl, kWorld, [&](comm::Transport& t, int rank) {
    auto& fabric = dynamic_cast<net::SocketFabric&>(t);
    if (impl == Impl::kSocketReactor) {
      EXPECT_EQ(fabric.io_threads(), 1);
    } else {
      EXPECT_EQ(fabric.io_threads(), kWorld - 1);
    }
    // Quiesce: a full barrier round so no rank tears down while another
    // still counts on its connection.
    for (int peer = 0; peer < kWorld; ++peer) {
      if (peer != rank) t.send(rank, peer, 99, ByteBuffer{});
    }
    for (int peer = 0; peer < kWorld; ++peer) {
      if (peer != rank) (void)t.recv(rank, peer, 99);
    }
  });
}

TEST_P(TransportConformance, ReactorStatsTrackWireActivity) {
  // Reactor-only observability: the loop's wakeup/readv/flush counters
  // move when traffic flows. (Threads mode reports zeroed stats; the
  // fabric has no reactor at all.)
  if (GetParam() != Impl::kSocketReactor) {
    GTEST_SKIP() << "reactor counters exist only in reactor mode";
  }
  run_world(GetParam(), 2, [&](comm::Transport& t, int rank) {
    const int peer = 1 - rank;
    for (int i = 0; i < 8; ++i) {
      t.send(rank, peer, 5, bytes_of({i}));
      (void)t.recv(rank, peer, 5);
    }
    auto& fabric = dynamic_cast<net::SocketFabric&>(t);
    const net::Reactor::Stats s = fabric.reactor_stats();
    EXPECT_GT(s.wakeups, 0u);
    EXPECT_GT(s.readv_calls, 0u);
    // 8 frames of (32-byte header + 1-byte payload) from the peer, at
    // minimum; coalescing may batch them into fewer readv calls.
    EXPECT_GE(s.readv_bytes, 8u * 33u);
    EXPECT_GT(s.flush_calls, 0u);
    EXPECT_GE(s.frames_flushed, 8u);
  });
}

}  // namespace
}  // namespace gcs
