// Tests for the measurement & calibration subsystem (src/measure/ +
// DESIGN.md "Measurement layer"):
//   * tracing transparency — tracing off or on has zero impact on values
//     and wire bytes for all five schemes (the acceptance claim (a));
//   * span coverage — a traced round records every phase with sane
//     bounds, and the measured wire volume agrees with the transports'
//     byte meters;
//   * link probing — RTT/bandwidth estimates are positive and the
//     measured incast penalty is consumed by netsim in place of the
//     assumed analytic constant (acceptance claim (c));
//   * calibration — the least-squares fit reduces mean absolute error
//     against measured round time relative to the uncalibrated cost
//     model on a multi-scheme sweep (acceptance claim (b)).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "comm/fabric.h"
#include "comm/group.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/aggregation_pipeline.h"
#include "core/factory.h"
#include "core/synthetic_grad.h"
#include "measure/calibrator.h"
#include "measure/link_prober.h"
#include "measure/trace.h"
#include "netsim/network_model.h"
#include "sim/cost_model.h"
#include "tensor/layout.h"

namespace gcs::measure {
namespace {

constexpr const char* kAllSchemes[] = {"fp16", "topk:b=8", "topkc:b=8",
                                       "thc:q=4:b=4:sat:partial",
                                       "powersgd:r=2"};

std::vector<std::vector<float>> make_grads(std::size_t dim, int world,
                                           std::uint64_t round) {
  return core::seeded_worker_grads(dim, world, /*seed=*/991, round);
}

struct TracedRun {
  std::vector<std::vector<float>> outputs;  ///< per round
  std::vector<std::uint64_t> wire_sent;     ///< per rank, summed rounds
  std::vector<RoundTrace> traces;           ///< per round (traced runs)
};

/// Runs `rounds` rounds of one spec on the threaded fabric, optionally
/// traced, from a fresh codec.
TracedRun run_rounds(const std::string& spec, const ModelLayout& layout,
                     int world, int rounds, std::size_t chunk_bytes,
                     bool traced) {
  TraceRecorder recorder;
  core::PipelineConfig pc =
      core::parse_pipeline_config(spec, layout, world);
  pc.backend = core::PipelineBackend::kThreadedFabric;
  if (chunk_bytes != 0) pc.chunk_bytes = chunk_bytes;
  if (traced) pc.trace = &recorder;
  core::AggregationPipeline pipeline(
      core::make_scheme_codec(spec, layout, world), pc);

  TracedRun run;
  run.wire_sent.assign(static_cast<std::size_t>(world), 0);
  const std::size_t dim = layout.total_size();
  for (int r = 0; r < rounds; ++r) {
    const auto grads = make_grads(dim, world,
                                  static_cast<std::uint64_t>(r));
    std::vector<std::span<const float>> views;
    for (const auto& g : grads) views.emplace_back(g.data(), g.size());
    std::vector<float> out(dim);
    pipeline.aggregate(std::span<const std::span<const float>>(views), out,
                       static_cast<std::uint64_t>(r));
    for (int rank = 0; rank < world; ++rank) {
      run.wire_sent[static_cast<std::size_t>(rank)] +=
          pipeline.last_wire().sent[static_cast<std::size_t>(rank)];
    }
    run.outputs.push_back(std::move(out));
    if (traced) {
      run.traces.push_back(recorder.take(static_cast<std::uint64_t>(r),
                                         spec, "threaded"));
    }
  }
  return run;
}

TEST(Tracing, ZeroWireAndValueImpactOnAllSchemes) {
  // Acceptance (a): the same rounds with and without tracing, from fresh
  // codecs — bit-identical aggregates, identical per-rank wire meters.
  const auto layout = make_transformer_like_layout(4096);
  for (const char* spec : kAllSchemes) {
    const auto plain = run_rounds(spec, layout, 4, 2, 1024, false);
    const auto traced = run_rounds(spec, layout, 4, 2, 1024, true);
    ASSERT_EQ(plain.outputs.size(), traced.outputs.size());
    for (std::size_t r = 0; r < plain.outputs.size(); ++r) {
      ASSERT_EQ(plain.outputs[r].size(), traced.outputs[r].size());
      EXPECT_EQ(std::memcmp(plain.outputs[r].data(),
                            traced.outputs[r].data(),
                            plain.outputs[r].size() * sizeof(float)),
                0)
          << spec << " round " << r;
    }
    EXPECT_EQ(plain.wire_sent, traced.wire_sent) << spec;
    // And the traced run actually observed the rounds.
    ASSERT_FALSE(traced.traces.empty()) << spec;
    EXPECT_GT(traced.traces[0].spans.size(), 0u) << spec;
  }
}

TEST(Tracing, RecordsEveryPhaseWithSaneBounds) {
  const auto layout = make_transformer_like_layout(4096);
  const auto run = run_rounds("topkc:b=8", layout, 4, 1, 1024, true);
  ASSERT_EQ(run.traces.size(), 1u);
  const RoundTrace& trace = run.traces[0];

  EXPECT_EQ(trace.phase_count(Phase::kRound), 1u);
  // TopKC has two wire stages (chunk-norms consensus + chunk-values).
  EXPECT_EQ(trace.phase_count(Phase::kStage), 2u);
  EXPECT_EQ(trace.phase_count(Phase::kEncode), 2u * 4u);  // per worker
  EXPECT_EQ(trace.phase_count(Phase::kReduce), 2u);
  EXPECT_EQ(trace.phase_count(Phase::kDecode), 1u);
  EXPECT_GT(trace.phase_count(Phase::kSend), 0u);
  EXPECT_EQ(trace.phase_count(Phase::kSend),
            trace.phase_count(Phase::kRecv));

  EXPECT_GT(trace.round_s(), 0.0);
  for (const auto& span : trace.spans) {
    EXPECT_GE(span.end_s, span.start_s);
    EXPECT_GE(span.start_s, 0.0);
  }
  // The traced wire volume is the metered wire volume: spans carry the
  // same payload bytes the transports' counters accumulate.
  std::uint64_t metered = 0;
  for (const auto b : run.wire_sent) metered += b;
  EXPECT_EQ(trace.phase_bytes(Phase::kSend), metered);
  EXPECT_EQ(trace.phase_bytes(Phase::kRecv), metered);

  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"phase\": \"send\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"topkc:b=8\""), std::string::npos);
}

TEST(Tracing, EncodeWorkerPoolSpansAreRecorded) {
  // The overlapped threaded path encodes on pool threads; their spans
  // must land in the recorder (it is shared across threads).
  const auto layout = make_transformer_like_layout(4096);
  TraceRecorder recorder;
  core::PipelineConfig pc;
  pc.backend = core::PipelineBackend::kThreadedFabric;
  pc.encode_workers = 2;
  pc.chunk_bytes = 2048;
  pc.trace = &recorder;
  core::AggregationPipeline pipeline(
      core::make_scheme_codec("topkc:b=8", layout, 4), pc);
  const auto grads = make_grads(layout.total_size(), 4, 0);
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  std::vector<float> out(layout.total_size());
  pipeline.aggregate(std::span<const std::span<const float>>(views), out, 0);
  const RoundTrace trace = recorder.take(0, "topkc:b=8", "threaded");
  EXPECT_EQ(trace.phase_count(Phase::kEncode), 2u * 4u);
}

TEST(LinkProber, RttAndBandwidthArePositive) {
  comm::Fabric fabric(4);
  std::vector<LinkEstimate> estimates(4);
  ProbeConfig config;
  config.rtt_iters = 16;
  config.bandwidth_bytes = 1 << 18;
  config.bandwidth_iters = 2;
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    estimates[static_cast<std::size_t>(comm.rank())] =
        probe_link(comm, 0, 1, config);
  });
  EXPECT_GT(estimates[0].rtt_s, 0.0);
  EXPECT_GT(estimates[0].bandwidth_bytes_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(estimates[0].latency_s, estimates[0].rtt_s / 2.0);
  // The estimate is broadcast: every rank returns the measuring rank's
  // numbers.
  for (int r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(estimates[static_cast<std::size_t>(r)].rtt_s,
                     estimates[0].rtt_s);
    EXPECT_DOUBLE_EQ(
        estimates[static_cast<std::size_t>(r)].bandwidth_bytes_per_sec,
        estimates[0].bandwidth_bytes_per_sec);
  }
}

TEST(LinkProber, MeasuredIncastPenaltyIsConsumedByNetsim) {
  // Acceptance (c): the probe yields a measured factor and netsim charges
  // with it in place of the assumed analytic constant.
  comm::Fabric fabric(4);
  std::vector<IncastEstimate> estimates(4);
  ProbeConfig config;
  config.incast_bytes = 1 << 16;
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    estimates[static_cast<std::size_t>(comm.rank())] =
        probe_incast(comm, 0, config);
  });
  const IncastEstimate& est = estimates[0];
  EXPECT_EQ(est.senders, 3);
  EXPECT_GT(est.penalty, 0.0);
  EXPECT_GT(est.serialized_s, 0.0);
  EXPECT_GT(est.concurrent_s, 0.0);
  for (int r = 1; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(estimates[static_cast<std::size_t>(r)].penalty,
                     est.penalty);
  }

  // Consumption: a model with the measured factor installed charges PS
  // aggregation with it — not with the analytic curve.
  netsim::NetworkModel assumed;
  netsim::NetworkModel measured;
  measured.set_measured_incast_penalty(est.penalty);
  EXPECT_FALSE(assumed.has_measured_incast());
  EXPECT_TRUE(measured.has_measured_incast());
  EXPECT_DOUBLE_EQ(measured.incast(3), est.penalty);
  EXPECT_DOUBLE_EQ(assumed.incast(3), netsim::incast_penalty(3));

  const double payload = 1e6;
  const auto ps_time = [&](const netsim::NetworkModel& m, double penalty) {
    const auto& link = m.link();
    const double bw = link.bandwidth_bytes_per_sec * 0.50;  // eff_.ps
    const double gather =
        link.latency_sec + 3.0 * payload * penalty / bw;
    const double bcast = link.latency_sec + 3.0 * payload / bw;
    return gather + bcast;
  };
  EXPECT_NEAR(measured.ps_aggregate_time(4, payload),
              ps_time(measured, est.penalty), 1e-12);
  EXPECT_NEAR(assumed.ps_aggregate_time(4, payload),
              ps_time(assumed, netsim::incast_penalty(3)), 1e-12);
  // probed_network_model packages the same consumption.
  const auto probed = probed_network_model(LinkEstimate{}, est);
  EXPECT_TRUE(probed.has_measured_incast());
  EXPECT_DOUBLE_EQ(probed.incast(3), est.penalty);
}

TEST(Calibrator, FitReducesMaeVsUncalibratedModel) {
  // Acceptance (b): on a >= 6-scenario threaded-fabric sweep, the fitted
  // charges track measured round time with lower mean absolute error
  // than the uncalibrated (paper-testbed) cost model. The uncalibrated
  // model charges a 100 Gbps cluster with a 10 ms fixed overhead; the
  // in-process fabric is orders of magnitude away, so the margin is
  // structural, not a timing accident.
  const std::size_t dim = 8192;
  const auto layout = make_transformer_like_layout(dim);
  const int world = 4;
  const int rounds = 3;  // round 0 warmup, 2 timed samples per scenario
  struct Scenario {
    const char* spec;
    std::size_t chunk;
  };
  const Scenario sweep[] = {
      {"fp16", 0},          {"fp16", 4096},
      {"topk:b=8", 0},      {"topkc:b=8", 0},
      {"topkc:b=8", 4096},  {"thc:q=4:b=4:sat:partial", 0},
      {"thc:q=4:b=4:sat:partial", 4096}, {"powersgd:r=2", 0},
  };

  sim::WorkloadSpec workload;
  workload.name = "measure-sweep";
  workload.layout = layout;
  workload.fp32_compute_seconds = 0.0;  // the rounds run no fwd/bwd
  const sim::CostModel uncalibrated(sim::CostConstants{},
                                    netsim::NetworkModel{}, world);

  Calibrator calibrator;
  std::vector<ScenarioSample> medians;
  std::vector<double> uncal_charges;
  for (const auto& scenario : sweep) {
    const auto run = run_rounds(scenario.spec, layout, world, rounds,
                                scenario.chunk, true);
    std::vector<ScenarioSample> samples;
    const std::string kind =
        std::string(scenario.spec)
            .substr(0, std::string(scenario.spec).find(':'));
    for (std::size_t r = 1; r < run.traces.size(); ++r) {  // skip warmup
      samples.push_back(sample_from_trace(
          run.traces[r], kind, dim,
          run.traces[r].phase_count(Phase::kStage)));
      calibrator.add(samples.back());
    }
    // Median-of-two = the faster (less noisy) round.
    medians.push_back(samples[0].measured_round_s <
                              samples[1].measured_round_s
                          ? samples[0]
                          : samples[1]);
    std::string spec = scenario.spec;
    if (scenario.chunk != 0) {
      spec += ":chunk=" + std::to_string(scenario.chunk);
    }
    uncal_charges.push_back(
        uncalibrated.round_for_spec(workload, spec).total());
  }

  ASSERT_GE(medians.size(), 6u);
  const CalibratedCostModel fitted = calibrator.fit();

  double mae_uncal = 0.0;
  for (std::size_t i = 0; i < medians.size(); ++i) {
    mae_uncal +=
        std::abs(uncal_charges[i] - medians[i].measured_round_s);
  }
  mae_uncal /= static_cast<double>(medians.size());
  const double mae_cal = fitted.mean_abs_error(
      std::span<const ScenarioSample>(medians));

  EXPECT_LT(mae_cal, mae_uncal)
      << "calibrated MAE " << mae_cal << " s vs uncalibrated " << mae_uncal
      << " s";
  // The fitted charge is a real prediction, not a constant: it must vary
  // across scenarios (the features differ by 4x in wire volume).
  double lo = 1e9, hi = 0.0;
  for (const auto& s : medians) {
    const double c = fitted.charged_round_s(s);
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  EXPECT_GT(hi, lo);
}

TEST(Calibrator, RejectsUnderdeterminedFit) {
  Calibrator calibrator;
  ScenarioSample s;
  s.scheme_kind = "fp16";
  s.messages = 10;
  s.wire_bytes = 1000;
  s.coordinates = 100;
  s.measured_round_s = 1e-3;
  calibrator.add(s);
  calibrator.add(s);
  EXPECT_THROW((void)calibrator.fit(), Error);  // 2 samples, 4 params
}

TEST(Calibrator, UnderdeterminedFitErrorIsClearAndCounted) {
  // Fewer traced rounds than coefficients must exit with an error that
  // names both counts — "widen the sweep" is actionable, a garbage fit
  // is not. Every additional scheme kind raises the parameter count
  // (3 + #kinds), so the boundary moves with the sweep's diversity.
  Calibrator calibrator;
  for (int i = 0; i < 4; ++i) {
    ScenarioSample s;
    s.scheme_kind = i % 2 == 0 ? "fp16" : "topkc";  // 2 kinds -> 5 params
    s.messages = 10.0 + i;
    s.wire_bytes = 1000.0 * (i + 1);
    s.coordinates = 100.0 * (i + 1);
    s.measured_round_s = 1e-3 * (i + 1);
    calibrator.add(s);
  }
  try {
    (void)calibrator.fit();
    FAIL() << "4 samples cannot fit 5 parameters";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("4 sample(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("5 parameters"), std::string::npos) << what;
    EXPECT_NE(what.find("widen the sweep"), std::string::npos) << what;
  }
  // One more independent sample crosses the boundary and the fit runs.
  ScenarioSample s;
  s.scheme_kind = "fp16";
  s.messages = 99.0;
  s.wire_bytes = 123456.0;
  s.coordinates = 77.0;
  s.measured_round_s = 5e-3;
  calibrator.add(s);
  EXPECT_NO_THROW((void)calibrator.fit());
}

TEST(LinkProber, HandlesZeroByteAndOneByteProbes) {
  // Degenerate payloads are legal probe configurations: a zero-byte bulk
  // transfer measures pure per-message overhead (bandwidth reported as
  // 0, which probed_network_model treats as "keep the default") and
  // 1-byte payloads are the smallest timed transfer. Neither may crash,
  // divide by zero, or hang — and the incast probe's penalty must fall
  // back to a sane value when the flows carry nothing.
  for (const std::size_t bytes : {std::size_t{0}, std::size_t{1}}) {
    comm::Fabric fabric(3);
    std::vector<LinkEstimate> links(3);
    std::vector<IncastEstimate> incasts(3);
    ProbeConfig config;
    config.rtt_iters = 4;
    config.bandwidth_iters = 2;
    config.bandwidth_bytes = bytes;
    config.incast_bytes = bytes;
    config.warmup_iters = 1;
    comm::run_workers(fabric, [&](comm::Communicator& comm) {
      const auto rank = static_cast<std::size_t>(comm.rank());
      links[rank] = probe_link(comm, 0, 1, config);
      incasts[rank] = probe_incast(comm, 0, config);
    });
    EXPECT_GT(links[0].rtt_s, 0.0) << bytes;
    if (bytes == 0) {
      EXPECT_EQ(links[0].bandwidth_bytes_per_sec, 0.0);
      // Zero-bandwidth estimates must not poison the packaged model.
      const auto model = probed_network_model(links[0], incasts[0]);
      EXPECT_GT(model.link().bandwidth_bytes_per_sec, 0.0);
    } else {
      EXPECT_GT(links[0].bandwidth_bytes_per_sec, 0.0);
    }
    EXPECT_GT(incasts[0].penalty, 0.0) << bytes;
    EXPECT_EQ(incasts[0].bytes_per_sender, bytes);
    for (int r = 1; r < 3; ++r) {
      EXPECT_DOUBLE_EQ(links[static_cast<std::size_t>(r)].rtt_s,
                       links[0].rtt_s)
          << bytes;
    }
  }
}

TEST(Calibrator, RecoversPlantedCoefficients) {
  // Synthetic ground truth: samples generated from known (fixed, alpha,
  // beta, gamma) must be recovered to float-ish precision — the normal
  // equations and the column scaling are exact on noiseless data.
  const double fixed = 2e-4, alpha = 3e-6, beta = 4e-10, gamma = 5e-9;
  Calibrator calibrator;
  for (int i = 1; i <= 8; ++i) {
    ScenarioSample s;
    s.scheme_kind = i % 2 == 0 ? "fp16" : "topkc";
    s.messages = 10.0 * i;
    s.wire_bytes = 30000.0 * i * (i % 3 + 1);
    s.coordinates = 8192.0 * (i % 4 + 1);
    s.measured_round_s = fixed + alpha * s.messages +
                         beta * s.wire_bytes + gamma * s.coordinates;
    calibrator.add(s);
  }
  const CalibratedCostModel fitted = calibrator.fit();
  EXPECT_NEAR(fitted.fixed_s(), fixed, 1e-8);
  EXPECT_NEAR(fitted.alpha_s(), alpha, 1e-10);
  EXPECT_NEAR(fitted.beta_s_per_byte(), beta, 1e-14);
  EXPECT_NEAR(fitted.compute_per_coord("fp16"), gamma, 1e-13);
  EXPECT_NEAR(fitted.compute_per_coord("topkc"), gamma, 1e-13);
  EXPECT_DOUBLE_EQ(fitted.compute_per_coord("unseen"), 0.0);
  EXPECT_NEAR(
      fitted.mean_abs_error(std::span<const ScenarioSample>(
          calibrator.samples())),
      0.0, 1e-9);
}

}  // namespace
}  // namespace gcs::measure
