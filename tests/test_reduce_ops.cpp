// Tests for comm/reduce_op: each operator's semantics on byte payloads.
#include "comm/reduce_op.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/check.h"
#include "numeric/half.h"

namespace gcs::comm {
namespace {

ByteBuffer floats_payload(std::initializer_list<float> xs) {
  ByteBuffer buf(xs.size() * sizeof(float));
  std::memcpy(buf.data(), std::data(xs), buf.size());
  return buf;
}

std::vector<float> floats_of(const ByteBuffer& buf) {
  std::vector<float> out(buf.size() / sizeof(float));
  std::memcpy(out.data(), buf.data(), buf.size());
  return out;
}

ByteBuffer halves_payload(std::initializer_list<float> xs) {
  ByteBuffer buf;
  ByteWriter w(buf);
  for (float x : xs) w.put<std::uint16_t>(float_to_half_bits(x));
  return buf;
}

TEST(Fp32Sum, AddsElementwise) {
  auto acc = floats_payload({1.0f, -2.0f});
  const auto in = floats_payload({0.5f, 3.0f});
  make_fp32_sum()->accumulate(acc, in);
  const auto out = floats_of(acc);
  EXPECT_EQ(out[0], 1.5f);
  EXPECT_EQ(out[1], 1.0f);
}

TEST(Fp32Sum, SizeMismatchThrows) {
  auto acc = floats_payload({1.0f});
  const auto in = floats_payload({1.0f, 2.0f});
  EXPECT_THROW(make_fp32_sum()->accumulate(acc, in), std::logic_error);
}

TEST(Fp16Sum, RoundsPerHop) {
  // 2048 + 1 in fp16: 2049 is not representable -> stays 2048.
  auto acc = halves_payload({2048.0f});
  const auto in = halves_payload({1.0f});
  make_fp16_sum()->accumulate(acc, in);
  const auto* bits = reinterpret_cast<const std::uint16_t*>(acc.data());
  EXPECT_EQ(half_bits_to_float(bits[0]), 2048.0f);
}

TEST(Fp16Sum, ExactForSmallIntegers) {
  auto acc = halves_payload({3.0f, -1.0f});
  const auto in = halves_payload({4.0f, 1.5f});
  make_fp16_sum()->accumulate(acc, in);
  const auto* bits = reinterpret_cast<const std::uint16_t*>(acc.data());
  EXPECT_EQ(half_bits_to_float(bits[0]), 7.0f);
  EXPECT_EQ(half_bits_to_float(bits[1]), 0.5f);
}

TEST(MinMax, Elementwise) {
  auto acc = floats_payload({1.0f, 5.0f});
  const auto in = floats_payload({3.0f, 2.0f});
  auto acc2 = acc;
  make_fp32_min()->accumulate(acc, in);
  EXPECT_EQ(floats_of(acc), (std::vector<float>{1.0f, 2.0f}));
  make_fp32_max()->accumulate(acc2, in);
  EXPECT_EQ(floats_of(acc2), (std::vector<float>{3.0f, 5.0f}));
}

TEST(SatInt, ReducesPackedLanesWithStats) {
  SatStats stats;
  const auto op = make_sat_int(4, &stats);
  auto acc = pack_signed_lanes(std::vector<std::int32_t>{6, 0}, 4);
  const auto in = pack_signed_lanes(std::vector<std::int32_t>{5, -3}, 4);
  op->accumulate(acc, in);
  const auto lanes = unpack_signed_lanes(acc, 2, 4);
  EXPECT_EQ(lanes[0], 7);  // clipped
  EXPECT_EQ(lanes[1], -3);
  EXPECT_EQ(stats.clips, 1u);
  EXPECT_EQ(stats.additions, 2u);
}

TEST(SatInt, RejectsUnsupportedWidths) {
  EXPECT_THROW(make_sat_int(3, nullptr), std::logic_error);
  EXPECT_THROW(make_sat_int(16, nullptr), std::logic_error);
}

TEST(SatInt, NullStatsIsAllowed) {
  const auto op = make_sat_int(8, nullptr);
  auto acc = pack_signed_lanes(std::vector<std::int32_t>{1}, 8);
  const auto in = pack_signed_lanes(std::vector<std::int32_t>{2}, 8);
  EXPECT_NO_THROW(op->accumulate(acc, in));
  EXPECT_EQ(unpack_signed_lanes(acc, 1, 8)[0], 3);
}

TEST(Granularity, MatchesElementWidths) {
  EXPECT_EQ(make_fp32_sum()->granularity(), 4u);
  EXPECT_EQ(make_fp16_sum()->granularity(), 2u);
  EXPECT_EQ(make_fp32_min()->granularity(), 4u);
  EXPECT_EQ(make_sat_int(2, nullptr)->granularity(), 1u);
}

TEST(Names, AreStable) {
  EXPECT_EQ(make_fp32_sum()->name(), "fp32_sum");
  EXPECT_EQ(make_fp16_sum()->name(), "fp16_sum");
  EXPECT_EQ(make_sat_int(4, nullptr)->name(), "sat_int4");
}

}  // namespace
}  // namespace gcs::comm
