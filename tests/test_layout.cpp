// Tests for tensor/layout: offsets, lookup, and the synthetic layouts.
#include "tensor/layout.h"

#include <gtest/gtest.h>

namespace gcs {
namespace {

TEST(ModelLayout, OffsetsAndTotals) {
  ModelLayout layout({{"a", 2, 3}, {"b", 4, 1}, {"c", 1, 5}});
  EXPECT_EQ(layout.num_layers(), 3u);
  EXPECT_EQ(layout.total_size(), 6u + 4u + 5u);
  EXPECT_EQ(layout.offset(0), 0u);
  EXPECT_EQ(layout.offset(1), 6u);
  EXPECT_EQ(layout.offset(2), 10u);
}

TEST(ModelLayout, LayerOf) {
  ModelLayout layout({{"a", 2, 3}, {"b", 4, 1}});
  EXPECT_EQ(layout.layer_of(0), 0u);
  EXPECT_EQ(layout.layer_of(5), 0u);
  EXPECT_EQ(layout.layer_of(6), 1u);
  EXPECT_EQ(layout.layer_of(9), 1u);
  EXPECT_THROW(layout.layer_of(10), std::logic_error);
}

TEST(ModelLayout, EmptyLayerRejected) {
  EXPECT_THROW(ModelLayout({{"zero", 0, 1}}), std::logic_error);
}

TEST(TransformerLayout, HitsTargetApproximately) {
  const std::size_t target = 1 << 20;
  const auto layout = make_transformer_like_layout(target);
  EXPECT_GT(layout.total_size(), target / 4);
  EXPECT_LE(layout.total_size(), target);
  EXPECT_GT(layout.num_layers(), 5u);
}

TEST(TransformerLayout, MixesMatrixAndVectorLayers) {
  const auto layout = make_transformer_like_layout(1 << 20);
  bool has_matrix = false, has_vector = false;
  for (const auto& l : layout.layers()) {
    if (l.cols > 1) has_matrix = true;
    if (l.cols == 1) has_vector = true;
  }
  EXPECT_TRUE(has_matrix);
  EXPECT_TRUE(has_vector);
}

TEST(ConvnetLayout, FcDominates) {
  const auto layout = make_convnet_like_layout(1 << 20);
  std::size_t fc = 0;
  for (const auto& l : layout.layers()) {
    if (l.name.rfind("fc", 0) == 0) fc += l.size();
  }
  // VGG-like: the FC block holds most parameters.
  EXPECT_GT(static_cast<double>(fc) /
                static_cast<double>(layout.total_size()),
            0.6);
}

TEST(SyntheticLayouts, Deterministic) {
  const auto a = make_transformer_like_layout(1 << 18);
  const auto b = make_transformer_like_layout(1 << 18);
  ASSERT_EQ(a.num_layers(), b.num_layers());
  EXPECT_EQ(a.total_size(), b.total_size());
}

}  // namespace
}  // namespace gcs
