// Tests for the chunked/overlapped round-time model: chunked execution
// hides compression compute under communication (strictly lower round
// time where there is compute to hide), never manufactures time out of
// thin air, and degrades gracefully to the monolithic model.
#include <gtest/gtest.h>

#include "sim/cost_model.h"
#include "sim/workload.h"

namespace gcs::sim {
namespace {

constexpr std::size_t kChunk = 1 << 20;  // 1 MiB

TEST(OverlapCost, ZeroChunkBytesIsMonolithic) {
  const CostModel cost;
  const auto w = make_bert_large_workload();
  for (const char* spec : {"fp16", "topk:b=8", "topkc:b=8",
                           "thc:q=4:b=4:sat:partial", "powersgd:r=4"}) {
    const RoundTime mono = cost.round_for_spec(w, spec);
    const RoundTime explicit_zero = cost.round_for_spec(w, spec, 0);
    EXPECT_DOUBLE_EQ(mono.total(), explicit_zero.total()) << spec;
    EXPECT_EQ(mono.chunks, 1u) << spec;
    EXPECT_DOUBLE_EQ(mono.overlap_saved_s, 0.0) << spec;
  }
}

TEST(OverlapCost, ChunkedStrictlyLowerWhereComputeHides) {
  // The acceptance scenario: schemes with real per-chunk compute get a
  // strictly lower round time from the chunked pipeline on the BERT
  // workload at a well-chosen chunk size (the latency-vs-overlap trade
  // means not every size wins; the bench sweeps the same grid).
  const CostModel cost;
  const auto w = make_bert_large_workload();
  for (const char* spec : {"topk:b=8", "thc:q=4:b=4:sat:partial",
                           "thc:q=4:b=8:full", "powersgd:r=4"}) {
    const RoundTime mono = cost.round_for_spec(w, spec);
    RoundTime best = mono;
    for (std::size_t chunk :
         {std::size_t{1} << 18, std::size_t{1} << 20, std::size_t{1} << 22,
          std::size_t{1} << 24}) {
      const RoundTime t = cost.round_for_spec(w, spec, chunk);
      if (t.total() < best.total()) best = t;
    }
    EXPECT_GT(best.chunks, 1u) << spec;
    EXPECT_GT(best.overlap_saved_s, 0.0) << spec;
    EXPECT_LT(best.total(), mono.total()) << spec;
  }
}

TEST(OverlapCost, SavingBoundedByCompressCompute) {
  const CostModel cost;
  const auto w = make_bert_large_workload();
  for (const char* spec : {"fp16", "topk:b=8", "topkc:b=2",
                           "thc:q=4:b=4:sat:partial", "powersgd:r=4"}) {
    for (std::size_t chunk : {std::size_t{1} << 16, std::size_t{1} << 20,
                              std::size_t{1} << 24}) {
      const RoundTime t = cost.round_for_spec(w, spec, chunk);
      EXPECT_LE(t.overlap_saved_s, t.compress_s + 1e-12) << spec;
      EXPECT_GE(t.overlap_saved_s, 0.0) << spec;
      EXPECT_GT(t.total(), 0.0) << spec;
    }
  }
}

TEST(OverlapCost, PureCommSchemesPayLatencyOnly) {
  // The FP16 baseline has no compression compute to hide: chunking can
  // only add per-chunk latency, so the monolithic round is never slower.
  const CostModel cost;
  const auto w = make_bert_large_workload();
  const RoundTime mono = cost.round_for_spec(w, "fp16");
  const RoundTime chunked = cost.round_for_spec(w, "fp16", kChunk);
  EXPECT_DOUBLE_EQ(chunked.overlap_saved_s, 0.0);
  EXPECT_GE(chunked.total(), mono.total());
}

TEST(OverlapCost, SpecChunkOptionMatchesArgument) {
  const CostModel cost;
  const auto w = make_bert_large_workload();
  const RoundTime by_arg =
      cost.round_for_spec(w, "thc:q=4:b=4:sat:partial", kChunk);
  const RoundTime by_spec =
      cost.round_for_spec(w, "thc:q=4:b=4:sat:partial:chunk=1048576");
  EXPECT_DOUBLE_EQ(by_arg.total(), by_spec.total());
  EXPECT_EQ(by_arg.chunks, by_spec.chunks);
}

TEST(OverlapCost, FinerChunksTradeLatencyForOverlap) {
  // Monotone latency accounting: comm_s grows with the chunk count while
  // the pipeline saving is capped by compress_s, so there is an optimum;
  // the model must expose both forces.
  const CostModel cost;
  const auto w = make_bert_large_workload();
  const RoundTime coarse =
      cost.round_for_spec(w, "thc:q=4:b=4:sat:partial", std::size_t{1} << 24);
  const RoundTime fine =
      cost.round_for_spec(w, "thc:q=4:b=4:sat:partial", std::size_t{1} << 14);
  EXPECT_GT(fine.chunks, coarse.chunks);
  EXPECT_GT(fine.comm_s, coarse.comm_s);
}

}  // namespace
}  // namespace gcs::sim
