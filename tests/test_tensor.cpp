// Tests for tensor/tensor.
#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gcs {
namespace {

TEST(Tensor, ConstructAndFill) {
  Tensor t(5, 2.0f);
  EXPECT_EQ(t.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.0f);
  t.fill(-1.0f);
  EXPECT_EQ(t[4], -1.0f);
}

TEST(Tensor, FromVector) {
  Tensor t(std::vector<float>{1.0f, 2.0f});
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, SliceViewsUnderlyingData) {
  Tensor t(10, 0.0f);
  auto s = t.slice(3, 4);
  s[0] = 9.0f;
  EXPECT_EQ(t[3], 9.0f);
  EXPECT_EQ(s.size(), 4u);
}

TEST(Tensor, SliceOutOfRangeThrows) {
  Tensor t(4);
  EXPECT_THROW(t.slice(2, 3), std::logic_error);
}

TEST(Tensor, Equality) {
  Tensor a(std::vector<float>{1.0f, 2.0f});
  Tensor b(std::vector<float>{1.0f, 2.0f});
  Tensor c(std::vector<float>{1.0f, 3.0f});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Tensor, Resize) {
  Tensor t(2, 1.0f);
  t.resize(4);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t[3], 0.0f);
  EXPECT_EQ(t[0], 1.0f);
}

TEST(Tensor, GaussianFillMoments) {
  Tensor t(100000);
  Rng rng(1);
  fill_gaussian(t.span(), rng, 2.0f);
  double sum = 0.0, sum2 = 0.0;
  for (float v : t.span()) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const auto n = static_cast<double>(t.size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 4.0, 0.1);
}

TEST(Tensor, UniformFillRange) {
  Tensor t(10000);
  Rng rng(2);
  fill_uniform(t.span(), rng, -1.0f, 3.0f);
  for (float v : t.span()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LT(v, 3.0f);
  }
}

}  // namespace
}  // namespace gcs
