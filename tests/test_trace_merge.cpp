// Tests for measure/trace_merge and measure/critical_path: rank-trace
// round-tripping, flow pairing, the causality-repair property (no flow
// may finish before it starts after merge), and critical-path
// attribution on hand-built DAGs with known answers.
#include "measure/trace_merge.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "measure/critical_path.h"
#include "telemetry/chrome_trace.h"

namespace gcs::measure {
namespace {

TraceSpan span(Phase phase, double start_s, double end_s, int rank = -1,
               int peer = -1, std::uint64_t tag = 0) {
  TraceSpan s;
  s.phase = phase;
  s.rank = rank;
  s.peer = peer;
  s.tag = tag;
  s.bytes = 64;
  s.start_s = start_s;
  s.end_s = end_s;
  return s;
}

RankTrace rank_trace(int rank, double epoch_s, std::vector<TraceSpan> spans,
                     ClockModel clock = {}) {
  RankTrace rt;
  rt.rank = rank;
  rt.clock = clock;
  rt.clock.rank = rank;
  RoundTrace t;
  t.round = 0;
  t.scheme = "test";
  t.backend = "socket";
  t.origin_rank = rank;
  t.epoch_s = epoch_s;
  t.spans = std::move(spans);
  rt.traces.push_back(std::move(t));
  return rt;
}

// ------------------------------------------------------- serialization

TEST(RankTraceJson, ExtendedFormatRoundTrips) {
  ClockModel clock;
  clock.offset_s = -0.125;
  clock.drift = 2.5e-5;
  clock.base_local_s = 100.0;
  clock.rtt_s = 3e-6;
  RankTrace rt = rank_trace(
      2, 1234.5,
      {span(Phase::kEncode, 0.0, 1e-3),
       span(Phase::kSend, 1e-3, 2e-3, 2, 0, 77)},
      clock);
  rt.traces[0].spans[0].label = "stage0";

  const RankTrace back = parse_rank_trace_json(rank_trace_to_json(rt));
  EXPECT_EQ(back.rank, 2);
  EXPECT_DOUBLE_EQ(back.clock.offset_s, -0.125);
  EXPECT_DOUBLE_EQ(back.clock.drift, 2.5e-5);
  EXPECT_DOUBLE_EQ(back.clock.rtt_s, 3e-6);
  ASSERT_EQ(back.traces.size(), 1u);
  EXPECT_DOUBLE_EQ(back.traces[0].epoch_s, 1234.5);
  EXPECT_EQ(back.traces[0].origin_rank, 2);
  ASSERT_EQ(back.traces[0].spans.size(), 2u);
  EXPECT_STREQ(back.traces[0].spans[0].label, "stage0");
  EXPECT_EQ(back.traces[0].spans[1].phase, Phase::kSend);
  EXPECT_EQ(back.traces[0].spans[1].peer, 0);
  EXPECT_EQ(back.traces[0].spans[1].tag, 77u);
  EXPECT_DOUBLE_EQ(back.traces[0].spans[1].start_s, 1e-3);
}

TEST(RankTraceJson, LegacyTracesDocumentFallsBackToOriginStamp) {
  RankTrace rt = rank_trace(3, 0.0, {span(Phase::kRound, 0.0, 1e-3)});
  const std::string legacy = traces_to_json(rt.traces);
  const RankTrace back = parse_rank_trace_json(legacy);
  EXPECT_EQ(back.rank, 3);  // from the round trace's origin_rank
  EXPECT_EQ(back.clock.offset_s, 0.0);
  ASSERT_EQ(back.traces.size(), 1u);
}

TEST(RankTraceJson, DocumentWithoutTracesThrows) {
  EXPECT_THROW(parse_rank_trace_json("{\"rank\": 1}"), Error);
  EXPECT_THROW(parse_rank_trace_json("not json"), Error);
}

// --------------------------------------------------------- flow pairing

TEST(TraceMerge, PairsSendsWithRecvsInFifoOrder) {
  // Rank 1 sends twice to rank 0 on the same tag; FIFO channels mean
  // k-th send matches k-th recv in start order.
  RankTrace sender = rank_trace(
      1, 10.0,
      {span(Phase::kSend, 1e-3, 2e-3, 1, 0, 5),
       span(Phase::kSend, 3e-3, 4e-3, 1, 0, 5)});
  RankTrace receiver = rank_trace(
      0, 10.0,
      {span(Phase::kRecv, 1e-3, 2.5e-3, 0, 1, 5),
       span(Phase::kRecv, 3e-3, 4.5e-3, 0, 1, 5)});

  const MergeResult merged = merge_rank_traces({sender, receiver});
  ASSERT_EQ(merged.rounds.size(), 1u);
  EXPECT_EQ(merged.flow_count, 2u);
  EXPECT_EQ(merged.violations_before, 0u);
  for (const Flow& f : merged.rounds[0].flows) {
    const MergedSpan& send =
        merged.rounds[0].spans[static_cast<std::size_t>(f.send_index)];
    const MergedSpan& recv =
        merged.rounds[0].spans[static_cast<std::size_t>(f.recv_index)];
    EXPECT_EQ(send.phase, Phase::kSend);
    EXPECT_EQ(recv.phase, Phase::kRecv);
    EXPECT_EQ(send.rank, 1);
    EXPECT_EQ(recv.rank, 0);
    // FIFO pairing: matched spans share their position in start order.
    EXPECT_NEAR(recv.start_s - send.start_s, 0.0, 1e-9);
  }
}

TEST(TraceMerge, RepairsCausalityAndFlowsNeverFinishBeforeTheyStart) {
  // Rank 1's clock is 5 ms ahead (a sync error far beyond any honest
  // rtt): aligned naively, rank 0's recv ends before rank 1's send
  // starts. Repair must shift ranks so every flow is causal, and the
  // shift must be reported.
  ClockModel wrong;
  wrong.offset_s = 5e-3;  // claims local + 5 ms = reference
  RankTrace sender = rank_trace(
      1, 10.0, {span(Phase::kSend, 1e-3, 2e-3, 1, 0, 5)}, wrong);
  RankTrace receiver = rank_trace(
      0, 10.0, {span(Phase::kRecv, 1e-3, 2.5e-3, 0, 1, 5)});

  const MergeResult merged = merge_rank_traces({sender, receiver});
  EXPECT_EQ(merged.flow_count, 1u);
  EXPECT_EQ(merged.violations_before, 1u);
  EXPECT_NEAR(merged.max_violation_before_s, 3.5e-3, 1e-6);
  // The property under test: after repair no flow finishes before it
  // starts.
  EXPECT_EQ(merged.violations_after, 0u);
  for (const MergedRound& round : merged.rounds) {
    for (const Flow& f : round.flows) {
      const MergedSpan& send =
          round.spans[static_cast<std::size_t>(f.send_index)];
      const MergedSpan& recv =
          round.spans[static_cast<std::size_t>(f.recv_index)];
      EXPECT_GE(recv.end_s + 1e-9, send.start_s);
    }
  }
  // Normalization pins the lowest rank: shift[0] == 0 exactly, and the
  // constraint shift[0] - shift[1] >= 3.5ms resolves as rank 1 pulled
  // 3.5 ms back in time.
  const int r0 = merged.rank_index(0);
  const int r1 = merged.rank_index(1);
  ASSERT_GE(r0, 0);
  ASSERT_GE(r1, 0);
  EXPECT_EQ(merged.shift_s[static_cast<std::size_t>(r0)], 0.0);
  EXPECT_NEAR(merged.shift_s[static_cast<std::size_t>(r1)], -3.5e-3, 1e-6);

  // Repair off: the violation must be reported, not hidden.
  MergeOptions raw;
  raw.repair_causality = false;
  const MergeResult unrepaired =
      merge_rank_traces({sender, receiver}, raw);
  EXPECT_EQ(unrepaired.violations_after, 1u);

  // And the Chrome exporter never draws a flow arrow backwards even on
  // the unrepaired timeline.
  const std::string chrome =
      telemetry::merged_chrome_trace_json(unrepaired);
  EXPECT_NE(chrome.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"f\""), std::string::npos);
}

// ------------------------------------------------------- critical path

/// Two ranks, one flow, fully contiguous path:
///   rank 1: encode [0, 10ms] -> send [10, 12ms]
///   rank 0: recv [11, 20ms] (gated by the send) -> reduce [20, 25ms]
///           -> decode [25, 30ms]
MergedRound known_dag() {
  MergedRound mr;
  mr.round = 0;
  auto add = [&mr](int rank, Phase phase, double a, double b, int wire = -1,
                   int peer = -1, std::uint64_t tag = 0) {
    MergedSpan s;
    s.rank = rank;
    s.phase = phase;
    s.wire_rank = wire;
    s.peer = peer;
    s.tag = tag;
    s.start_s = a;
    s.end_s = b;
    mr.spans.push_back(s);
  };
  add(1, Phase::kEncode, 0.000, 0.010);
  add(1, Phase::kSend, 0.010, 0.012, 1, 0, 9);
  add(0, Phase::kRecv, 0.011, 0.020, 0, 1, 9);
  add(0, Phase::kReduce, 0.020, 0.025);
  add(0, Phase::kDecode, 0.025, 0.030);
  Flow f;
  f.send_index = 1;
  f.recv_index = 2;
  mr.spans[1].flow = 0;
  mr.spans[2].flow = 0;
  mr.flows.push_back(f);
  return mr;
}

TEST(CriticalPath, WalksKnownDagAndAttributesEveryBucket) {
  const MergedRound mr = known_dag();
  const RoundReport report = analyze_round(mr, {0, 1});

  EXPECT_NEAR(report.makespan_s, 0.030, 1e-9);
  // The path is contiguous from encode start to decode end.
  EXPECT_NEAR(report.critical_path_s, 0.030, 1e-9);
  // encode 10ms + reduce 5ms + decode 5ms = compute; send 2ms + gated
  // part of the recv [12, 20ms] = wire.
  EXPECT_NEAR(report.bucket_s[static_cast<std::size_t>(CostBucket::kCompute)],
              0.020, 1e-9);
  EXPECT_NEAR(report.bucket_s[static_cast<std::size_t>(CostBucket::kWire)],
              0.010, 1e-9);
  EXPECT_NEAR(report.bucket_s[static_cast<std::size_t>(CostBucket::kStall)],
              0.0, 1e-9);
  // rank 0 owns recv tail + reduce + decode = 18ms; rank 1 owns encode +
  // send = 12ms.
  ASSERT_EQ(report.ranks.size(), 2u);
  EXPECT_NEAR(report.rank_attributed_s[0], 0.018, 1e-9);
  EXPECT_NEAR(report.rank_attributed_s[1], 0.012, 1e-9);
  EXPECT_EQ(report.straggler, 0);
  EXPECT_NEAR(report.straggler_share, 0.018 / 0.030, 1e-6);
  // rank 1 finished its last span at 12ms; 18ms of slack against the
  // 30ms makespan. rank 0 finished last: zero slack.
  EXPECT_NEAR(report.rank_slack_s[0], 0.0, 1e-9);
  EXPECT_NEAR(report.rank_slack_s[1], 0.018, 1e-9);
  // Cause -> effect ordering of the emitted segments.
  for (std::size_t i = 1; i < report.segments.size(); ++i) {
    EXPECT_GE(report.segments[i].start_s + 1e-9,
              report.segments[i - 1].end_s - 1e-9);
  }
}

TEST(CriticalPath, SchedulingGapBecomesStallOnTheLateRank) {
  // Same DAG, but rank 1 goes idle for 28 ms between finishing its
  // encode and starting its send — the delayed-straggler signature.
  MergedRound mr;
  mr.round = 1;
  auto add = [&mr](int rank, Phase phase, double a, double b, int wire = -1,
                   int peer = -1, std::uint64_t tag = 0) {
    MergedSpan s;
    s.rank = rank;
    s.phase = phase;
    s.wire_rank = wire;
    s.peer = peer;
    s.tag = tag;
    s.start_s = a;
    s.end_s = b;
    mr.spans.push_back(s);
  };
  add(1, Phase::kEncode, 0.000, 0.010);
  add(1, Phase::kSend, 0.038, 0.040, 1, 0, 9);
  add(0, Phase::kRecv, 0.011, 0.045, 0, 1, 9);
  add(0, Phase::kDecode, 0.045, 0.050);
  Flow f;
  f.send_index = 1;
  f.recv_index = 2;
  mr.spans[1].flow = 0;
  mr.spans[2].flow = 0;
  mr.flows.push_back(f);

  const RoundReport report = analyze_round(mr, {0, 1});
  // The 28 ms gap [10, 38ms] is a stall attributed to rank 1 — the rank
  // that was late, not the rank that waited.
  EXPECT_NEAR(report.bucket_s[static_cast<std::size_t>(CostBucket::kStall)],
              0.028, 1e-9);
  EXPECT_EQ(report.straggler, 1);
  EXPECT_GT(report.straggler_share, 0.5);
  bool found_stall = false;
  for (const PathSegment& seg : report.segments) {
    if (seg.bucket == CostBucket::kStall) {
      found_stall = true;
      EXPECT_EQ(seg.rank, 1);
      EXPECT_EQ(seg.span_index, -1);
    }
  }
  EXPECT_TRUE(found_stall);
}

TEST(CriticalPath, ConcurrentSendsIntoOneDestinationCountAsIncastWait) {
  // Ranks 1 and 2 both send into rank 0; rank 2's send covers the whole
  // gated window of the flow-1 recv, so that wire time is incast wait.
  MergedRound mr;
  mr.round = 2;
  auto add = [&mr](int rank, Phase phase, double a, double b, int wire = -1,
                   int peer = -1, std::uint64_t tag = 0) {
    MergedSpan s;
    s.rank = rank;
    s.phase = phase;
    s.wire_rank = wire;
    s.peer = peer;
    s.tag = tag;
    s.start_s = a;
    s.end_s = b;
    mr.spans.push_back(s);
  };
  add(1, Phase::kSend, 0.000, 0.002, 1, 0, 9);
  add(2, Phase::kSend, 0.000, 0.030, 2, 0, 11);
  add(0, Phase::kRecv, 0.002, 0.020, 0, 1, 9);
  add(0, Phase::kDecode, 0.020, 0.035);
  Flow f;
  f.send_index = 0;
  f.recv_index = 2;
  mr.spans[0].flow = 0;
  mr.spans[2].flow = 0;
  mr.flows.push_back(f);

  const RoundReport report = analyze_round(mr, {0, 1, 2});
  const double incast =
      report.bucket_s[static_cast<std::size_t>(CostBucket::kIncastWait)];
  // The recv's gated window [2, 20ms] is fully shadowed by rank 2's
  // concurrent send into the same destination (18 ms), and the flow-1
  // send itself [0, 2ms] is shadowed too — 20 ms of incast wait total.
  EXPECT_NEAR(incast, 0.020, 1e-9);
}

TEST(CriticalPath, SummaryAggregatesRoundsAndNamesOverallStraggler) {
  RankTrace sender = rank_trace(
      1, 10.0,
      {span(Phase::kEncode, 0.0, 0.010), span(Phase::kSend, 0.030, 0.032, 1, 0, 5)});
  RankTrace receiver = rank_trace(
      0, 10.0,
      {span(Phase::kRecv, 0.001, 0.033, 0, 1, 5),
       span(Phase::kDecode, 0.033, 0.035)});
  const MergeResult merged = merge_rank_traces({sender, receiver});
  const AnalysisSummary summary = analyze(merged);
  ASSERT_EQ(summary.rounds.size(), 1u);
  EXPECT_EQ(summary.straggler, 1);  // 20 ms stall before its send
  EXPECT_GT(summary.straggler_share, 0.5);
  EXPECT_GT(summary.critical_path_s, 0.0);
  double bucket_total = 0.0;
  for (double b : summary.bucket_s) bucket_total += b;
  EXPECT_NEAR(bucket_total, summary.critical_path_s, 1e-9);
}

}  // namespace
}  // namespace gcs::measure
