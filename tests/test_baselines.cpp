// Tests for core/baselines: exactness of FP32, bounded loss of FP16, wire
// accounting matching the paper's b values.
#include "core/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/vnmse.h"

namespace gcs::core {
namespace {

std::vector<std::vector<float>> random_grads(int n, std::size_t d,
                                             std::uint64_t seed,
                                             float scale = 1.0f) {
  std::vector<std::vector<float>> grads(n, std::vector<float>(d));
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[w]) {
      v = scale * static_cast<float>(rng.next_gaussian());
    }
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

TEST(Fp32Baseline, BitsPerCoordinateIs32) {
  BaselineConfig config;
  config.dimension = 100;
  config.world_size = 4;
  config.comm_precision = Precision::kFp32;
  auto c = make_baseline(config);
  const auto grads = random_grads(4, 100, 1);
  std::vector<float> out(100);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  EXPECT_DOUBLE_EQ(stats.bits_per_coordinate(100), 32.0);
  EXPECT_EQ(c->name(), "Baseline FP32");
  EXPECT_EQ(c->path(), AggregationPath::kAllReduce);
}

TEST(Fp16Baseline, BitsPerCoordinateIs16) {
  BaselineConfig config;
  config.dimension = 64;
  config.world_size = 2;
  config.comm_precision = Precision::kFp16;
  auto c = make_baseline(config);
  const auto grads = random_grads(2, 64, 2);
  std::vector<float> out(64);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  EXPECT_DOUBLE_EQ(stats.bits_per_coordinate(64), 16.0);
  EXPECT_EQ(c->name(), "Baseline FP16");
}

TEST(Fp32Baseline, ExactUpToRingOrdering) {
  BaselineConfig config;
  config.dimension = 333;
  config.world_size = 4;
  config.comm_precision = Precision::kFp32;
  auto c = make_baseline(config);
  const auto grads = random_grads(4, 333, 3);
  std::vector<float> out(333);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  for (std::size_t i = 0; i < 333; ++i) {
    double sum = 0.0;
    for (const auto& g : grads) sum += g[i];
    EXPECT_NEAR(out[i], sum, 1e-4);
  }
}

TEST(Fp16Baseline, SmallRelativeError) {
  BaselineConfig config;
  config.dimension = 1000;
  config.world_size = 4;
  config.comm_precision = Precision::kFp16;
  auto c = make_baseline(config);
  const auto grads = random_grads(4, 1000, 4);
  std::vector<float> out(1000);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  const double err =
      vnmse(out, std::span<const std::span<const float>>(views));
  // FP16's negligible-degradation claim: vNMSE ~ (2^-11)^2 scale.
  EXPECT_LT(err, 1e-5);
  EXPECT_GT(err, 0.0);
}

TEST(Fp16Baseline, LessAccurateThanFp32) {
  const auto grads = random_grads(4, 500, 5, 100.0f);
  const auto views = views_of(grads);
  std::vector<float> out16(500), out32(500);
  BaselineConfig c16{500, 4, Precision::kFp16, false};
  BaselineConfig c32{500, 4, Precision::kFp32, false};
  make_baseline(c16)->aggregate(views, out16, 0);
  make_baseline(c32)->aggregate(views, out32, 0);
  const auto span_views = std::span<const std::span<const float>>(views);
  EXPECT_GT(vnmse(out16, span_views), vnmse(out32, span_views));
}

TEST(Baselines, TreeMatchesRingForFp32) {
  const auto grads = random_grads(3, 64, 6);
  const auto views = views_of(grads);
  std::vector<float> ring_out(64), tree_out(64);
  BaselineConfig ring{64, 3, Precision::kFp32, false};
  BaselineConfig tree{64, 3, Precision::kFp32, true};
  make_baseline(ring)->aggregate(views, ring_out, 0);
  make_baseline(tree)->aggregate(views, tree_out, 0);
  for (std::size_t i = 0; i < 64; ++i) {
    EXPECT_NEAR(ring_out[i], tree_out[i], 1e-4);
  }
}

TEST(Baselines, SingleWorkerPassThrough) {
  BaselineConfig config{10, 1, Precision::kFp32, false};
  auto c = make_baseline(config);
  const auto grads = random_grads(1, 10, 7);
  std::vector<float> out(10);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], grads[0][i]);
}

TEST(Baselines, DeterministicAcrossCalls) {
  BaselineConfig config{128, 4, Precision::kFp16, false};
  auto c = make_baseline(config);
  const auto grads = random_grads(4, 128, 8);
  const auto views = views_of(grads);
  std::vector<float> out1(128), out2(128);
  c->aggregate(views, out1, 0);
  c->aggregate(views, out2, 0);
  EXPECT_EQ(out1, out2);
}

}  // namespace
}  // namespace gcs::core
