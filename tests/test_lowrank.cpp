// Tests for lowrank: Gram-Schmidt quality and PowerSGD single-matrix steps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lowrank/orthogonalize.h"
#include "lowrank/powersgd_step.h"
#include "tensor/vecops.h"

namespace gcs {
namespace {

std::vector<float> random_matrix(std::size_t rows, std::size_t cols,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> m(rows * cols);
  for (auto& v : m) v = static_cast<float>(rng.next_gaussian());
  return m;
}

TEST(Orthogonalize, ProducesOrthonormalColumns) {
  for (auto [rows, cols] : {std::pair<std::size_t, std::size_t>{32, 4},
                            {100, 16},
                            {8, 8}}) {
    auto m = random_matrix(rows, cols, rows * 31 + cols);
    orthogonalize_columns(m, rows, cols);
    EXPECT_LT(orthonormality_residual(m, rows, cols), 1e-3)
        << rows << "x" << cols;
  }
}

TEST(Orthogonalize, HandlesDuplicateColumns) {
  // Two identical columns: the second must be replaced, not left zero.
  const std::size_t rows = 16, cols = 2;
  std::vector<float> m(rows * cols);
  Rng rng(5);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto v = static_cast<float>(rng.next_gaussian());
    m[i * cols] = v;
    m[i * cols + 1] = v;
  }
  orthogonalize_columns(m, rows, cols);
  EXPECT_LT(orthonormality_residual(m, rows, cols), 1e-3);
}

TEST(Orthogonalize, HandlesZeroMatrix) {
  std::vector<float> m(20 * 3, 0.0f);
  orthogonalize_columns(m, 20, 3);
  EXPECT_LT(orthonormality_residual(m, 20, 3), 1e-3);
}

TEST(Orthogonalize, FlopsFormulaIsQuadraticInRank) {
  const auto f1 = orthogonalize_flops(1000, 4);
  const auto f2 = orthogonalize_flops(1000, 8);
  EXPECT_GT(f2, 3 * f1);  // ~4x for 2x rank
}

TEST(EffectiveRank, ClampsToMatrixSides) {
  EXPECT_EQ(effective_rank(100, 50, 4), 4u);
  EXPECT_EQ(effective_rank(3, 50, 4), 3u);
  EXPECT_EQ(effective_rank(100, 2, 4), 2u);
}

TEST(PowerSgdStep, ExactForRankDeficientMatrix) {
  // M = u v^T has rank 1; a single power iteration with r >= 1 recovers it
  // exactly (up to fp error).
  const std::size_t rows = 24, cols = 17;
  Rng rng(7);
  std::vector<float> u(rows), v(cols);
  for (auto& x : u) x = static_cast<float>(rng.next_gaussian());
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  std::vector<float> m(rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) m[i * cols + j] = u[i] * v[j];
  }

  auto st = PowerSgdLayerState::init(rows, cols, 2, rng);
  std::vector<float> p(rows * st.rank);
  powersgd_compute_p(m, st, p);
  orthogonalize_columns(p, rows, st.rank);
  std::vector<float> q(cols * st.rank);
  powersgd_compute_q(m, st, p, q);
  std::vector<float> m_hat(rows * cols);
  powersgd_reconstruct(st, p, q, m_hat);

  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_NEAR(m_hat[i], m[i], 1e-3f) << i;
  }
}

TEST(PowerSgdStep, WarmStartConvergesToDominantSubspace) {
  // Iterating P/Q on a fixed matrix must monotonically improve the
  // approximation (power iteration convergence).
  const std::size_t rows = 40, cols = 30;
  auto m = random_matrix(rows, cols, 11);
  Rng rng(13);
  auto st = PowerSgdLayerState::init(rows, cols, 4, rng);

  double prev_err = 1e300;
  for (int iter = 0; iter < 6; ++iter) {
    std::vector<float> p(rows * st.rank);
    powersgd_compute_p(m, st, p);
    orthogonalize_columns(p, rows, st.rank);
    std::vector<float> q(cols * st.rank);
    powersgd_compute_q(m, st, p, q);
    st.q = q;
    std::vector<float> m_hat(rows * cols);
    powersgd_reconstruct(st, p, q, m_hat);
    double err = 0.0;
    for (std::size_t i = 0; i < m.size(); ++i) {
      const double diff = m_hat[i] - m[i];
      err += diff * diff;
    }
    EXPECT_LE(err, prev_err * 1.001) << "iter " << iter;
    prev_err = err;
  }
  // Rank-4 approximation of a 40x30 Gaussian matrix captures a
  // substantial energy fraction.
  EXPECT_LT(prev_err, squared_norm(m));
}

TEST(PowerSgdStep, InitIsSeedDeterministic) {
  Rng r1(5), r2(5);
  const auto a = PowerSgdLayerState::init(10, 8, 3, r1);
  const auto b = PowerSgdLayerState::init(10, 8, 3, r2);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.rank, 3u);
}

}  // namespace
}  // namespace gcs
