// Tests for sim/tta: target extraction, utility, tabulation, CSV.
#include "sim/tta.h"

#include <gtest/gtest.h>

namespace gcs::sim {
namespace {

DdpResult make_run(std::string scheme, std::vector<double> times,
                   std::vector<double> metrics) {
  DdpResult r;
  r.scheme = std::move(scheme);
  for (std::size_t i = 0; i < times.size(); ++i) {
    TtaPoint p;
    p.round = static_cast<int>(i + 1);
    p.time_s = times[i];
    p.metric = metrics[i];
    p.raw_metric = metrics[i];
    r.curve.push_back(p);
  }
  r.simulated_seconds = times.empty() ? 0.0 : times.back();
  r.final_metric = metrics.empty() ? 0.0 : metrics.back();
  return r;
}

TEST(TimeToTarget, HigherIsBetter) {
  const auto run = make_run("a", {1, 2, 3}, {0.3, 0.5, 0.7});
  const auto t =
      time_to_target(run, 0.5, train::MetricDirection::kHigherIsBetter);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 2.0);
}

TEST(TimeToTarget, LowerIsBetter) {
  const auto run = make_run("a", {1, 2, 3}, {5.0, 4.0, 3.5});
  const auto t =
      time_to_target(run, 3.6, train::MetricDirection::kLowerIsBetter);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 3.0);
}

TEST(TimeToTarget, UnreachedIsNullopt) {
  const auto run = make_run("a", {1, 2}, {0.1, 0.2});
  EXPECT_FALSE(
      time_to_target(run, 0.9, train::MetricDirection::kHigherIsBetter)
          .has_value());
}

TEST(Utility, RatioOfBaselineToScheme) {
  const auto fast = make_run("fast", {1, 2}, {0.4, 0.8});
  const auto slow = make_run("slow", {2, 4}, {0.4, 0.8});
  const auto u = utility_vs_baseline(
      fast, slow, 0.8, train::MetricDirection::kHigherIsBetter);
  ASSERT_TRUE(u.has_value());
  EXPECT_DOUBLE_EQ(*u, 2.0);  // baseline takes 4, scheme takes 2
}

TEST(Utility, MissedTargetGivesNullopt) {
  const auto fast = make_run("fast", {1}, {0.5});
  const auto slow = make_run("slow", {1}, {0.9});
  EXPECT_FALSE(utility_vs_baseline(fast, slow, 0.8,
                                   train::MetricDirection::kHigherIsBetter)
                   .has_value());
}

TEST(Tabulate, ContainsSchemesAndSamples) {
  const auto a = make_run("SchemeA", {100, 200}, {0.1, 0.2});
  const auto b = make_run("SchemeB", {150, 300}, {0.15, 0.25});
  const auto table = tabulate_curves({a, b}, 4);
  EXPECT_NE(table.find("SchemeA"), std::string::npos);
  EXPECT_NE(table.find("SchemeB"), std::string::npos);
  EXPECT_NE(table.find("time"), std::string::npos);
}

TEST(Csv, OneRowPerPoint) {
  const auto a = make_run("s", {1, 2, 3}, {0.1, 0.2, 0.3});
  const auto csv = curves_to_csv({a});
  // Header + 3 rows.
  int lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(csv.find("scheme,round,time_s,metric,raw_metric"),
            std::string::npos);
}

TEST(RecoveryStall, ShiftsCurveFromFailureRoundOn) {
  // A failure at round 2 with a 10 s recovery: rounds before the failure
  // keep their times, rounds from the failure on shift right, metrics
  // stay put (EF-preserving recovery keeps the rounds axis intact) —
  // which is exactly how the stall degrades time-to-accuracy.
  const DdpResult run = make_run("topkc", {10.0, 20.0, 30.0, 40.0},
                                 {0.1, 0.2, 0.3, 0.4});
  const DdpResult stalled = with_recovery_stall(run, 2, 10.0);
  ASSERT_EQ(stalled.curve.size(), 4u);
  EXPECT_DOUBLE_EQ(stalled.curve[0].time_s, 10.0);  // round 1: untouched
  EXPECT_DOUBLE_EQ(stalled.curve[1].time_s, 30.0);  // round 2: +10
  EXPECT_DOUBLE_EQ(stalled.curve[2].time_s, 40.0);
  EXPECT_DOUBLE_EQ(stalled.curve[3].time_s, 50.0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(stalled.curve[i].metric, run.curve[i].metric);
  }
  EXPECT_DOUBLE_EQ(stalled.simulated_seconds, 50.0);

  // TTA at a target past the failure moves by exactly the stall.
  const auto before = time_to_target(run, 0.3, train::MetricDirection::kHigherIsBetter);
  const auto after =
      time_to_target(stalled, 0.3, train::MetricDirection::kHigherIsBetter);
  ASSERT_TRUE(before && after);
  EXPECT_DOUBLE_EQ(*after - *before, 10.0);
}

}  // namespace
}  // namespace gcs::sim
