// Tests for sparse/chunks: norms, consensus selection, gather/scatter.
#include "sparse/chunks.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "numeric/half.h"

namespace gcs {
namespace {

TEST(Chunks, Count) {
  EXPECT_EQ(num_chunks(100, 10), 10u);
  EXPECT_EQ(num_chunks(101, 10), 11u);
  EXPECT_EQ(num_chunks(5, 10), 1u);
  EXPECT_EQ(num_chunks(0, 10), 0u);
}

TEST(Chunks, SquaredNorms) {
  const std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  std::vector<float> norms(3);
  chunk_squared_norms(x, 2, norms);
  EXPECT_FLOAT_EQ(norms[0], 5.0f);
  EXPECT_FLOAT_EQ(norms[1], 25.0f);
  EXPECT_FLOAT_EQ(norms[2], 25.0f);  // partial last chunk
}

TEST(Chunks, Fp16RoundingOfScores) {
  std::vector<float> scores{2049.0f};  // not representable in fp16
  round_scores_fp16(scores);
  EXPECT_EQ(scores[0], 2048.0f);
}

TEST(Chunks, SelectTopIsByScore) {
  const std::vector<float> scores{1.0f, 9.0f, 3.0f, 9.5f};
  EXPECT_EQ(select_top_chunks(scores, 2), (std::vector<std::uint32_t>{1, 3}));
}

TEST(Chunks, GatherScatterRoundTrip) {
  Rng rng(1);
  std::vector<float> x(103);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  const std::vector<std::uint32_t> ids{0, 5, 10};  // chunk 10 is partial (3)
  std::vector<float> payload(2 * 10 + 3);
  const auto got = gather_chunks(x, 10, ids, payload);
  EXPECT_EQ(got, 23u);

  std::vector<float> back(x.size(), -1.0f);
  scatter_chunks(std::span<const float>(payload).first(got), 10, ids, back);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const std::size_t chunk = i / 10;
    const bool selected = chunk == 0 || chunk == 5 || chunk == 10;
    EXPECT_EQ(back[i], selected ? x[i] : 0.0f) << i;
  }
}

TEST(Chunks, GatherOutOfRangeThrows) {
  std::vector<float> x(10);
  std::vector<float> out(10);
  const std::vector<std::uint32_t> ids{5};
  EXPECT_THROW(gather_chunks(x, 10, ids, out), std::logic_error);
}

TEST(Chunks, ConsensusIsIdenticalAcrossWorkersGivenSameScores) {
  // The correctness core of TopKC: identical aggregated scores =>
  // identical selection, regardless of local data.
  Rng rng(2);
  std::vector<float> scores(500);
  for (auto& s : scores) s = std::fabs(static_cast<float>(rng.next_gaussian()));
  round_scores_fp16(scores);
  const auto sel1 = select_top_chunks(scores, 50);
  const auto sel2 = select_top_chunks(scores, 50);
  EXPECT_EQ(sel1, sel2);
  ASSERT_EQ(sel1.size(), 50u);
}

TEST(Chunks, HighNormChunksWin) {
  std::vector<float> x(100, 0.01f);
  for (int i = 30; i < 40; ++i) x[i] = 5.0f;  // chunk 3 is hot
  std::vector<float> norms(10);
  chunk_squared_norms(x, 10, norms);
  const auto sel = select_top_chunks(norms, 1);
  EXPECT_EQ(sel[0], 3u);
}

}  // namespace
}  // namespace gcs
