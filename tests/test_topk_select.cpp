// Tests for sparse/topk: exact selection, tie-breaking, reference parity.
#include "sparse/topk.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace gcs {
namespace {

TEST(TopK, SelectsLargestMagnitudes) {
  const std::vector<float> x{0.1f, -5.0f, 3.0f, 0.0f, -2.0f};
  const auto idx = top_k_indices(x, 2);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2}));
}

TEST(TopK, ResultSortedByIndex) {
  const std::vector<float> x{5.0f, 1.0f, 4.0f, 3.0f};
  const auto idx = top_k_indices(x, 3);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 2, 3}));
}

TEST(TopK, KLargerThanSizeClamps) {
  const std::vector<float> x{1.0f, 2.0f};
  EXPECT_EQ(top_k_indices(x, 10).size(), 2u);
}

TEST(TopK, KZeroIsEmpty) {
  const std::vector<float> x{1.0f};
  EXPECT_TRUE(top_k_indices(x, 0).empty());
}

TEST(TopK, TieBreaksTowardLowerIndex) {
  const std::vector<float> x{2.0f, -2.0f, 2.0f};
  const auto idx = top_k_indices(x, 2);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{0, 1}));
}

TEST(TopK, AgreesWithReferenceOnRandomInputs) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.next_below(500);
    std::vector<float> x(n);
    for (auto& v : x) {
      // Coarse grid forces frequent ties.
      v = static_cast<float>(
              static_cast<int>(rng.next_below(21)) - 10) /
          2.0f;
    }
    const std::size_t k = rng.next_below(n + 1);
    EXPECT_EQ(top_k_indices(x, k), top_k_indices_reference(x, k))
        << "n=" << n << " k=" << k;
  }
}

TEST(TopJ, ByValueNotMagnitude) {
  const std::vector<float> scores{-9.0f, 1.0f, 5.0f};
  const auto idx = top_j_by_value(scores, 2);
  EXPECT_EQ(idx, (std::vector<std::uint32_t>{1, 2}));
}

TEST(TopJ, DeterministicUnderTies) {
  const std::vector<float> scores{1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_EQ(top_j_by_value(scores, 2), (std::vector<std::uint32_t>{0, 1}));
}

TEST(TopK, SelectionCoversExactlyK) {
  Rng rng(9);
  std::vector<float> x(1000);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  const auto idx = top_k_indices(x, 100);
  ASSERT_EQ(idx.size(), 100u);
  const std::set<std::uint32_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 100u);
  // Every selected magnitude >= every unselected magnitude.
  float min_selected = 1e30f;
  for (auto i : idx) min_selected = std::min(min_selected, std::fabs(x[i]));
  for (std::uint32_t i = 0; i < x.size(); ++i) {
    if (uniq.count(i) == 0) {
      EXPECT_LE(std::fabs(x[i]), min_selected + 1e-6f);
    }
  }
}

}  // namespace
}  // namespace gcs
