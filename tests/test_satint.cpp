// Tests for quant/satint: the Sat(.,.) operator, clipping accounting,
// packed wire reduction, and (non-)associativity characterization.
#include "quant/satint.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace gcs {
namespace {

TEST(SatAdd, ClampsIntoTwosComplementDomain) {
  // b = 4 -> [-8, 7] (two's complement; see satint.h for why the paper's
  // symmetric domain is widened by one at the bottom).
  EXPECT_EQ(sat_add(3, 2, 4), 5);
  EXPECT_EQ(sat_add(6, 6, 4), 7);
  EXPECT_EQ(sat_add(-6, -6, 4), -8);
  EXPECT_EQ(sat_add(7, -7, 4), 0);
}

TEST(SatAdd, Bounds) {
  EXPECT_EQ(sat_max(4), 7);
  EXPECT_EQ(sat_min(4), -8);
  EXPECT_EQ(sat_max(8), 127);
  EXPECT_EQ(sat_min(8), -128);
  EXPECT_EQ(sat_min(2), -2);
  EXPECT_EQ(sat_max(2), 1);
}

TEST(SatAdd, IsCommutative) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto x = static_cast<std::int32_t>(rng.next_below(15)) - 7;
    const auto y = static_cast<std::int32_t>(rng.next_below(15)) - 7;
    EXPECT_EQ(sat_add(x, y, 4), sat_add(y, x, 4));
  }
}

TEST(SatAdd, IsNotAssociativeOnceClipping) {
  // (7 + 7) + (-7) = 7 + (-7) = 0, but 7 + (7 + (-7)) = 7 + 0 = 7.
  EXPECT_EQ(sat_add(sat_add(7, 7, 4), -7, 4), 0);
  EXPECT_EQ(sat_add(7, sat_add(7, -7, 4), 4), 7);
}

TEST(SatAddLanes, CountsClips) {
  std::vector<std::int32_t> acc{6, 0, -6};
  const std::vector<std::int32_t> in{5, 1, -5};
  SatStats stats;
  sat_add_lanes(acc, in, 4, &stats);
  EXPECT_EQ(acc[0], 7);
  EXPECT_EQ(acc[1], 1);
  EXPECT_EQ(acc[2], -8);
  EXPECT_EQ(stats.additions, 3u);
  EXPECT_EQ(stats.clips, 2u);
  EXPECT_NEAR(stats.clip_rate(), 2.0 / 3.0, 1e-12);
}

TEST(SatStats, MergeAccumulates) {
  SatStats a{10, 2}, b{5, 1};
  a.merge(b);
  EXPECT_EQ(a.additions, 15u);
  EXPECT_EQ(a.clips, 3u);
}

TEST(SatClampLanes, ClampsIntoDomain) {
  std::vector<std::int32_t> lanes{-9, 8, 0, 7, -8};
  sat_clamp_lanes(lanes, 4);
  EXPECT_EQ(lanes[0], -8);
  EXPECT_EQ(lanes[1], 7);
  EXPECT_EQ(lanes[2], 0);
  EXPECT_EQ(lanes[3], 7);
  EXPECT_EQ(lanes[4], -8);
}

TEST(SignedPack, RoundTrip) {
  Rng rng(2);
  for (unsigned bits : {2u, 4u, 8u}) {
    std::vector<std::int32_t> lanes(257);
    const auto span = static_cast<std::uint64_t>(2 * sat_max(bits) + 1);
    for (auto& l : lanes) {
      l = static_cast<std::int32_t>(rng.next_below(span)) + sat_min(bits);
    }
    const auto packed = pack_signed_lanes(lanes, bits);
    const auto back = unpack_signed_lanes(packed, lanes.size(), bits);
    EXPECT_EQ(back, lanes) << bits;
  }
}

TEST(SignedPack, OutOfDomainThrows) {
  const std::vector<std::int32_t> lanes{-9};  // b=4 domain is [-8, 7]
  EXPECT_THROW(pack_signed_lanes(lanes, 4), std::logic_error);
  const std::vector<std::int32_t> high{8};
  EXPECT_THROW(pack_signed_lanes(high, 4), std::logic_error);
}

TEST(SatReducePacked, MatchesLaneOperation) {
  const std::vector<std::int32_t> a{3, -7, 6, 0};
  const std::vector<std::int32_t> b{5, -2, -6, 1};
  ByteBuffer acc = pack_signed_lanes(a, 4);
  const ByteBuffer in = pack_signed_lanes(b, 4);
  SatStats stats;
  sat_reduce_packed(acc, in, 4, 4, &stats);
  const auto result = unpack_signed_lanes(acc, 4, 4);
  EXPECT_EQ(result[0], 7);  // clipped at the top
  EXPECT_EQ(result[1], -9 < sat_min(4) ? sat_min(4) : -9);  // -8, clipped
  EXPECT_EQ(result[2], 0);
  EXPECT_EQ(result[3], 1);
  EXPECT_EQ(stats.clips, 2u);
}

TEST(SatReduce, NoClipsForSmallValues) {
  Rng rng(3);
  std::vector<std::int32_t> a(100), b(100);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int32_t>(rng.next_below(7)) - 3;
    b[i] = static_cast<std::int32_t>(rng.next_below(7)) - 3;
  }
  SatStats stats;
  std::vector<std::int32_t> acc = a;
  sat_add_lanes(acc, b, 8, &stats);
  EXPECT_EQ(stats.clips, 0u);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(acc[i], a[i] + b[i]);
}

}  // namespace
}  // namespace gcs
