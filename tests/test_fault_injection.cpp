// The acceptance tests of elastic membership (DESIGN.md "Fault
// tolerance"), driven by the fault-injection harness
// (tests/fault_injection.h):
//
//   * Kill matrix — worlds 3..5, every non-zero victim rank, every kill
//     phase: survivors complete the interrupted round and the following
//     rounds with gradients bit-identical to a fresh (world-1) run
//     seeded with the survivors' carried-over EF state.
//   * All five schemes survive a mid-collective kill.
//   * Loud-failure regression — with elastic off (the default), a peer
//     exit mid-round throws on every surviving rank within the peer
//     timeout, across all five schemes. No hang, no shrink.
//   * Codec remap unit tests — EF residuals bit-preserved, bad survivor
//     sets rejected.
#include "fault_injection.h"

#include <gtest/gtest.h>

#include <cstring>

#include "core/factory.h"

namespace gcs::testing {
namespace {

const char* kAllSchemes[] = {
    "fp16",                     // dense baseline (no EF)
    "topk:b=8",                 // all-gather sparse, EF in begin/finish
    "topkc:b=8",                // consensus sparse, two stages
    "thc:q=4:b=4:sat:partial",  // quantized, three stages, stateless
    "powersgd:r=2",             // low-rank, EF + warm-started Q iterates
};

/// Asserts one elastic world run matches the reference continuation:
/// the victim died, every survivor completed all rounds, and every
/// survivor's per-round (world, epoch, output-hash) sequence and final
/// EF fingerprints are identical to the remap-seeded local-backend run.
void expect_matches_reference(const WorldConfig& config,
                              const FaultPlan& fault) {
  const WorldResult result = run_world(config, fault);
  const RankReport reference = reference_run(config, fault);
  SCOPED_TRACE(config.scheme + std::string(" victim ") +
               std::to_string(fault.victim) + " " +
               to_string(fault.phase) + " round " +
               std::to_string(fault.round) + " world " +
               std::to_string(config.world));

  ASSERT_EQ(result.outcomes.size(),
            static_cast<std::size_t>(config.world));
  for (const auto& outcome : result.outcomes) {
    if (outcome.rank == fault.victim) {
      EXPECT_FALSE(outcome.ok) << "the victim was supposed to die";
      continue;
    }
    ASSERT_TRUE(outcome.ok)
        << "rank " << outcome.rank << ": "
        << (outcome.error.empty() ? outcome.wait_status : outcome.error);
    const RankReport report = parse_report(outcome.report);
    EXPECT_TRUE(report.completed) << "rank " << outcome.rank;
    ASSERT_EQ(report.rounds.size(), reference.rounds.size())
        << "rank " << outcome.rank;
    for (std::size_t i = 0; i < report.rounds.size(); ++i) {
      EXPECT_EQ(report.rounds[i], reference.rounds[i])
          << "rank " << outcome.rank << " round " << i << ": got world "
          << report.rounds[i].world << " epoch " << report.rounds[i].epoch
          << " hash " << std::hex << report.rounds[i].out_hash
          << ", want world " << std::dec << reference.rounds[i].world
          << " epoch " << reference.rounds[i].epoch << " hash " << std::hex
          << reference.rounds[i].out_hash;
    }
    EXPECT_EQ(report.ef_hashes, reference.ef_hashes)
        << "rank " << outcome.rank
        << ": EF residuals diverged across the epoch swap";
  }
}

TEST(FaultInjection, KillMatrixEveryRankEveryPhaseWorlds3To5) {
  // The full acceptance matrix on the EF-carrying two-stage scheme:
  // worlds 3-5, every non-zero rank killed, at each of the four phases.
  // Kill at round 2 of 7, so survivors prove the interrupted round plus
  // the next 5 rounds bit-match the reference continuation. Runs on the
  // default epoll-reactor engine — this matrix is the recovery
  // acceptance gate for the event-driven fabric (EOF delivery, teardown
  // cascade, epoch rebuild all through the reactor loop).
  constexpr KillPhase kPhases[] = {
      KillPhase::kPreRendezvous,
      KillPhase::kMidEncode,
      KillPhase::kMidCollective,
      KillPhase::kMidDecode,
  };
  for (int world = 3; world <= 5; ++world) {
    for (int victim = 1; victim < world; ++victim) {
      for (const KillPhase phase : kPhases) {
        WorldConfig config;
        config.scheme = "topkc:b=8";
        config.world = world;
        config.rounds = 7;
        config.dim = 1024;
        config.chunk = 256;
        config.rejoin_window_ms = 600;
        config.log_dir = "fault_logs";
        FaultPlan fault;
        fault.victim = victim;
        fault.phase = phase;
        fault.round = 2;
        expect_matches_reference(config, fault);
      }
    }
  }
}

TEST(FaultInjection, AllFiveSchemesSurviveMidCollectiveKill) {
  for (const char* scheme : kAllSchemes) {
    WorldConfig config;
    config.scheme = scheme;
    config.world = 4;
    config.rounds = 7;
    config.dim = 1024;
    config.chunk = 256;
    config.rejoin_window_ms = 600;
    config.log_dir = "fault_logs";
    FaultPlan fault;
    fault.victim = 2;
    fault.phase = KillPhase::kMidCollective;
    fault.round = 2;
    expect_matches_reference(config, fault);
  }
}

TEST(FaultInjection, LegacyThreadedEngineSurvivesEveryKillPhase) {
  // The thread-per-peer engine stays a supported fallback (io=threads):
  // one world of the matrix — every phase, the same bit-exactness
  // criterion — keeps its recovery path honest without doubling the
  // full matrix's runtime.
  constexpr KillPhase kPhases[] = {
      KillPhase::kPreRendezvous,
      KillPhase::kMidEncode,
      KillPhase::kMidCollective,
      KillPhase::kMidDecode,
  };
  for (const KillPhase phase : kPhases) {
    WorldConfig config;
    config.scheme = "topkc:b=8";
    config.world = 4;
    config.rounds = 7;
    config.dim = 1024;
    config.chunk = 256;
    config.rejoin_window_ms = 600;
    config.io = net::SocketIoMode::kThreads;
    config.log_dir = "fault_logs";
    FaultPlan fault;
    fault.victim = 2;
    fault.phase = phase;
    fault.round = 2;
    expect_matches_reference(config, fault);
  }
}

TEST(FaultInjection, ElasticOffStillFailsLoudlyWithinPeerTimeout) {
  // The regression pin on today's loud-failure contract: with elastic
  // off (the default), a peer exit mid-round throws on every surviving
  // rank well within peer_timeout_ms — never a hang — across all five
  // schemes. Round 0 must still have committed (the failure is at
  // round 1), and nothing may shrink or recover.
  for (const char* scheme : kAllSchemes) {
    WorldConfig config;
    config.scheme = scheme;
    config.world = 3;
    config.rounds = 4;
    config.dim = 1024;
    config.chunk = 256;
    config.elastic = false;
    config.peer_timeout_ms = 5000;
    config.log_dir = "fault_logs";
    FaultPlan fault;
    fault.victim = 2;
    fault.phase = KillPhase::kMidEncode;
    fault.round = 1;
    const WorldResult result = run_world(config, fault);
    SCOPED_TRACE(scheme);
    ASSERT_EQ(result.outcomes.size(), 3u);
    for (const auto& outcome : result.outcomes) {
      if (outcome.rank == fault.victim) {
        EXPECT_FALSE(outcome.ok);
        continue;
      }
      // The survivor's body returned a report (it did not hang and was
      // not killed); the report says the round threw.
      ASSERT_TRUE(outcome.ok)
          << "rank " << outcome.rank << ": "
          << (outcome.error.empty() ? outcome.wait_status : outcome.error);
      const RankReport report = parse_report(outcome.report);
      EXPECT_FALSE(report.completed) << "rank " << outcome.rank;
      EXPECT_EQ(report.rounds.size(), 1u)
          << "rank " << outcome.rank << ": round 0 committed, round 1 died";
      EXPECT_FALSE(report.error.empty());
      EXPECT_LT(report.fail_elapsed_ms,
                static_cast<std::uint64_t>(config.peer_timeout_ms))
          << "rank " << outcome.rank
          << " took longer than the peer timeout to notice: "
          << report.error;
    }
  }
}

TEST(ElasticCodec, RemapPreservesEfResidualsBitExact) {
  // The EF carry-over in isolation: after a few rounds at world 4, the
  // remapped world-3 codec's memory row i must be byte-identical to the
  // original's row survivors[i].
  const ModelLayout layout({LayerSpec{"flat", 512, 1}});
  for (const char* scheme : {"topk:b=8", "topkc:b=8", "powersgd:r=2"}) {
    core::AggregationPipeline pipeline(
        core::make_scheme_codec(scheme, layout, 4), core::PipelineConfig{});
    std::vector<float> out(512);
    for (int r = 0; r < 3; ++r) {
      auto grads = core::seeded_worker_grads(512, 4, 99, r);
      std::vector<std::span<const float>> views;
      for (const auto& g : grads) views.emplace_back(g.data(), g.size());
      pipeline.aggregate(std::span<const std::span<const float>>(views),
                         out, static_cast<std::uint64_t>(r));
    }
    const std::vector<int> survivors = {0, 1, 3};
    const auto shrunk = pipeline.codec().remap_workers(survivors);
    ASSERT_EQ(shrunk->world_size(), 3) << scheme;
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      const auto original =
          pipeline.codec().ef_memory(survivors[i]);
      const auto carried = shrunk->ef_memory(static_cast<int>(i));
      ASSERT_EQ(carried.size(), original.size()) << scheme;
      ASSERT_FALSE(carried.empty()) << scheme << ": EF expected";
      EXPECT_EQ(std::memcmp(carried.data(), original.data(),
                            carried.size() * sizeof(float)),
                0)
          << scheme << " worker " << survivors[i];
    }
  }
}

TEST(ElasticCodec, RemapRejectsBadSurvivorSets) {
  const ModelLayout layout({LayerSpec{"flat", 128, 1}});
  const auto codec = core::make_scheme_codec("topkc:b=8", layout, 4);
  EXPECT_THROW((void)codec->remap_workers(std::vector<int>{}), Error);
  EXPECT_THROW((void)codec->remap_workers(std::vector<int>{0, 4}), Error);
  EXPECT_THROW((void)codec->remap_workers(std::vector<int>{-1, 2}), Error);
  EXPECT_THROW((void)codec->remap_workers(std::vector<int>{2, 1}), Error);
  EXPECT_THROW((void)codec->remap_workers(std::vector<int>{1, 1, 2}),
               Error);
  // A legal set works and preserves dimension/scheme.
  const auto ok = codec->remap_workers(std::vector<int>{0, 2, 3});
  EXPECT_EQ(ok->world_size(), 3);
  EXPECT_EQ(ok->dimension(), codec->dimension());
  EXPECT_EQ(ok->name(), codec->name());
}

}  // namespace
}  // namespace gcs::testing
