// Tests for common/rng: determinism, distribution sanity, bounded draws.
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace gcs {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 95u);  // not stuck
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, FloatInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const float x = r.next_float();
    EXPECT_GE(x, 0.0f);
    EXPECT_LT(x, 1.0f);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(13);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMoments) {
  Rng r(19);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, SignIsBalanced) {
  Rng r(23);
  int pos = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const float s = r.next_sign();
    ASSERT_TRUE(s == 1.0f || s == -1.0f);
    if (s > 0) ++pos;
  }
  EXPECT_NEAR(static_cast<double>(pos) / n, 0.5, 0.01);
}

TEST(Rng, PermutationIsValid) {
  Rng r(29);
  const auto p = r.permutation(257);
  ASSERT_EQ(p.size(), 257u);
  std::set<std::uint32_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, PermutationIsNotIdentity) {
  Rng r(31);
  const auto p = r.permutation(1000);
  int fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == i) ++fixed;
  }
  EXPECT_LT(fixed, 20);  // E[fixed points] = 1
}

TEST(DeriveSeed, StreamsDecorrelate) {
  const auto a = derive_seed(42, 0);
  const auto b = derive_seed(42, 1);
  EXPECT_NE(a, b);
  Rng ra(a), rb(b);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (ra.next_u64() == rb.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(DeriveSeed, Deterministic) {
  EXPECT_EQ(derive_seed(7, 9), derive_seed(7, 9));
}

TEST(Splitmix, AdvancesState) {
  std::uint64_t s = 5;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace gcs
