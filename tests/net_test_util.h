// Shared helpers for socket-touching test suites.
//
// Hardcoded TCP port constants make socket suites collide under
// `ctest -j` (two test processes picking the same port race on bind);
// ephemeral_tcp_port() asks the kernel instead: bind port 0, read the
// assignment back, release it. The tiny window between release and the
// test's own bind is tolerated by SO_REUSEADDR (net/socket.cpp sets it on
// every TCP listener) and by the kernel's preference for fresh ephemeral
// ports over just-released ones.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

namespace gcs::net {

/// A TCP port that was free a moment ago, unique per call.
inline int ephemeral_tcp_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("ephemeral_tcp_port: socket failed");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = 0;  // kernel picks
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    throw std::runtime_error("ephemeral_tcp_port: bind failed");
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("ephemeral_tcp_port: getsockname failed");
  }
  const int port = ntohs(sa.sin_port);
  ::close(fd);
  return port;
}

}  // namespace gcs::net
