// Shared helpers for socket-touching test suites.
//
// Hardcoded TCP port constants make socket suites collide under
// `ctest -j` (two test processes picking the same port race on bind).
// Two remedies live here, in order of strength:
//
//   * ephemeral_tcp_port() asks the kernel: bind port 0, read the
//     assignment back, release it. The tiny window between release and
//     the test's own bind is tolerated by SO_REUSEADDR, but a parallel
//     test can still steal the port in that window.
//
//   * ReservedTcpPort closes the window entirely (reserve-and-hold): it
//     binds port 0 with SO_REUSEADDR|SO_REUSEPORT and KEEPS the socket
//     open — never listening — while the test hands the port number to
//     the code under test. net/socket.cpp sets the same two options on
//     every TCP listener, and Linux allows multiple SO_REUSEPORT binds
//     to one port by the same UID, so the real listener's bind succeeds
//     while any unrelated process (which did not set SO_REUSEPORT on
//     this port) is locked out. Because the reservation socket never
//     calls listen(), the kernel routes every incoming connection to
//     the one socket that does — the listener under test.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>

namespace gcs::net {

/// A TCP port that was free a moment ago, unique per call. Prefer
/// ReservedTcpPort when the port must stay yours until the test binds it.
inline int ephemeral_tcp_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("ephemeral_tcp_port: socket failed");
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sa.sin_port = 0;  // kernel picks
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
    ::close(fd);
    throw std::runtime_error("ephemeral_tcp_port: bind failed");
  }
  socklen_t len = sizeof(sa);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    ::close(fd);
    throw std::runtime_error("ephemeral_tcp_port: getsockname failed");
  }
  const int port = ntohs(sa.sin_port);
  ::close(fd);
  return port;
}

/// Reserve-and-hold ephemeral port: the kernel-assigned port stays bound
/// (SO_REUSEPORT, not listening) for the lifetime of this object, so no
/// other process can take it between port() and the test's own bind.
class ReservedTcpPort {
 public:
  ReservedTcpPort() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("ReservedTcpPort: socket failed");
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0 ||
        ::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      ::close(fd_);
      throw std::runtime_error("ReservedTcpPort: setsockopt failed");
    }
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    sa.sin_port = 0;  // kernel picks
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) != 0) {
      ::close(fd_);
      throw std::runtime_error("ReservedTcpPort: bind failed");
    }
    socklen_t len = sizeof(sa);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
      ::close(fd_);
      throw std::runtime_error("ReservedTcpPort: getsockname failed");
    }
    port_ = ntohs(sa.sin_port);
  }

  ReservedTcpPort(const ReservedTcpPort&) = delete;
  ReservedTcpPort& operator=(const ReservedTcpPort&) = delete;

  ~ReservedTcpPort() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// The held port. Valid to hand to a listener that sets SO_REUSEPORT
  /// (net::Socket::listen_on does) while this object is alive.
  int port() const { return port_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace gcs::net
