// Tests for the real-socket transport: framing, rendezvous, tag-indexed
// reassembly, zero-length payloads, peer-exit and timeout behaviour, and
// byte-meter parity with the in-process fabric.
#include "net/socket_fabric.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "comm/chunked_collectives.h"
#include "comm/fabric.h"
#include "comm/group.h"
#include "common/check.h"
#include "net/framing.h"
#include "net/launcher.h"
#include "net/rendezvous.h"
#include "net_test_util.h"

namespace gcs::net {
namespace {

ByteBuffer bytes_of(std::initializer_list<int> xs) {
  ByteBuffer b;
  for (int x : xs) b.push_back(static_cast<std::byte>(x));
  return b;
}

/// Runs one body per rank on its own thread, each rank constructing its
/// own SocketFabric endpoint — the in-process stand-in for real worker
/// processes (which tests/test_socket_pipeline.cpp and the launcher
/// cover).
void run_socket_ranks(
    int n, const std::function<void(SocketFabric&, int)>& body,
    int recv_timeout_ms = 20000) {
  const std::string rendezvous = unique_unix_rendezvous();
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        SocketFabricConfig config;
        config.rendezvous = rendezvous;
        config.world_size = n;
        config.rank = rank;
        config.recv_timeout_ms = recv_timeout_ms;
        SocketFabric fabric(config);
        body(fabric, rank);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

TEST(Framing, RoundTripsTagsAndPayloads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]), b(fds[1]);

  const ByteBuffer payload = bytes_of({1, 2, 3, 4, 5});
  write_frame(a, 7, 0, 42, payload);
  write_frame(a, 7, 0, 43, {});  // zero-length payloads are legal frames

  FrameHeader header;
  ByteBuffer received;
  ASSERT_TRUE(read_frame(b, header, received));
  EXPECT_EQ(header.src_rank, 7u);
  EXPECT_EQ(header.epoch, 0u);
  EXPECT_EQ(header.tag, 42u);
  EXPECT_EQ(received, payload);
  ASSERT_TRUE(read_frame(b, header, received));
  EXPECT_EQ(header.tag, 43u);
  EXPECT_TRUE(received.empty());

  a.close();  // clean EOF at a frame boundary
  EXPECT_FALSE(read_frame(b, header, received));
}

TEST(Framing, ScatterGatherWritePutsExactBytesOnTheWire) {
  // write_frame sends header+payload via one sendmsg; the stream must be
  // byte-for-byte the documented GCSF layout (little-endian magic,
  // src_rank, epoch, tag, length, then the raw payload) — the framing
  // contract peers parse against, independent of how many syscalls
  // produced it.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]), b(fds[1]);

  const ByteBuffer payload = bytes_of({0xde, 0xad, 0xbe, 0xef, 0x42});
  const std::uint32_t src_rank = 0x01020304u;
  const std::uint64_t epoch = 0x0a0b0c0d0e0f1011ull;
  const std::uint64_t tag = 0x1122334455667788ull;
  write_frame(a, src_rank, epoch, tag, payload);

  ByteBuffer wire(kFrameHeaderBytes + payload.size());
  ASSERT_TRUE(b.read_exact(wire.data(), wire.size()));

  ByteBuffer expected;
  ByteWriter w(expected);
  w.put<std::uint32_t>(kFrameMagic);
  w.put<std::uint32_t>(src_rank);
  w.put<std::uint64_t>(epoch);
  w.put<std::uint64_t>(tag);
  w.put<std::uint64_t>(payload.size());
  w.put_bytes(payload);
  EXPECT_EQ(wire, expected);

  // The scatter-gather path and a manual two-part write_all produce the
  // identical stream.
  a.write_all(expected.data(), kFrameHeaderBytes);
  a.write_all(expected.data() + kFrameHeaderBytes, payload.size());
  FrameHeader got;
  ByteBuffer got_payload;
  ASSERT_TRUE(read_frame(b, got, got_payload));
  EXPECT_EQ(got.src_rank, src_rank);
  EXPECT_EQ(got.epoch, epoch);
  EXPECT_EQ(got.tag, tag);
  EXPECT_EQ(got_payload, payload);
}

TEST(Framing, ScatterGatherHandlesLargePayloads) {
  // Payloads beyond the socket buffer force partial sendmsg returns; the
  // iovec rebuild must resume mid-payload without corrupting the stream.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]), b(fds[1]);

  ByteBuffer payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 2654435761u >> 13);
  }
  std::thread writer([&] { write_frame(a, 3, 1, 99, payload); });
  FrameHeader header;
  ByteBuffer received;
  ASSERT_TRUE(read_frame(b, header, received));
  writer.join();
  EXPECT_EQ(header.src_rank, 3u);
  EXPECT_EQ(header.epoch, 1u);
  EXPECT_EQ(header.tag, 99u);
  EXPECT_EQ(received, payload);
}

TEST(Framing, BadMagicThrows) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]), b(fds[1]);
  const char garbage[kFrameHeaderBytes] = "not a frame header, padding..";
  a.write_all(garbage, sizeof(garbage));
  FrameHeader header;
  ByteBuffer payload;
  EXPECT_THROW(read_frame(b, header, payload), Error);
}

TEST(Framing, PropertyRandomizedPartialWritesRoundTripBitIdentically) {
  // Property test: a randomized sequence of frames — interleaved tags,
  // epochs, payload sizes from empty to multi-segment — written through
  // an adversarial byte-dribbler (random split points force every
  // possible short read inside headers and payloads) must round-trip
  // bit-identically and in order. 32 seeded trials.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull);
    const int frames = 1 + static_cast<int>(rng() % 12);
    struct Sent {
      std::uint32_t src;
      std::uint64_t epoch;
      std::uint64_t tag;
      ByteBuffer payload;
    };
    std::vector<Sent> sent;
    ByteBuffer stream;
    {
      // Serialize through a real socketpair to reuse write_frame
      // verbatim, collecting the exact byte stream it produces.
      int fds[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
      Socket w(fds[0]), r(fds[1]);
      std::size_t total = 0;
      for (int f = 0; f < frames; ++f) {
        Sent s;
        s.src = static_cast<std::uint32_t>(rng() % 16);
        s.epoch = rng() % 4;
        s.tag = rng();  // interleaved, arbitrary tags
        s.payload.resize(static_cast<std::size_t>(rng() % 4096));
        for (auto& byte : s.payload) {
          byte = static_cast<std::byte>(rng() & 0xff);
        }
        write_frame(w, s.src, s.epoch, s.tag, s.payload);
        total += kFrameHeaderBytes + s.payload.size();
        sent.push_back(std::move(s));
      }
      stream.resize(total);
      ASSERT_TRUE(r.read_exact(stream.data(), stream.size()));
    }

    // Replay the identical bytes in random dribbles from another thread;
    // the reader must reassemble every frame exactly.
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    Socket w(fds[0]), r(fds[1]);
    std::thread dribbler([&, seed] {
      std::mt19937_64 chop(seed ^ 0xdeadbeefull);
      std::size_t at = 0;
      while (at < stream.size()) {
        const std::size_t n =
            std::min<std::size_t>(1 + chop() % 97, stream.size() - at);
        w.write_all(stream.data() + at, n);
        at += n;
      }
      w.close();  // clean EOF at the final frame boundary
    });
    for (const auto& s : sent) {
      FrameHeader header;
      ByteBuffer payload;
      ASSERT_TRUE(read_frame(r, header, payload)) << "seed " << seed;
      EXPECT_EQ(header.src_rank, s.src) << "seed " << seed;
      EXPECT_EQ(header.epoch, s.epoch) << "seed " << seed;
      EXPECT_EQ(header.tag, s.tag) << "seed " << seed;
      EXPECT_EQ(payload, s.payload) << "seed " << seed;
    }
    FrameHeader header;
    ByteBuffer payload;
    EXPECT_FALSE(read_frame(r, header, payload)) << "seed " << seed;
    dribbler.join();
  }
}

TEST(Address, ParsesAndRejects) {
  const Address unix_addr = Address::parse("unix:/tmp/x");
  EXPECT_TRUE(unix_addr.is_unix);
  EXPECT_EQ(unix_addr.path, "/tmp/x");
  const Address tcp_addr = Address::parse("tcp:127.0.0.1:29500");
  EXPECT_FALSE(tcp_addr.is_unix);
  EXPECT_EQ(tcp_addr.host, "127.0.0.1");
  EXPECT_EQ(tcp_addr.port, 29500);
  EXPECT_THROW(Address::parse("udp:127.0.0.1:1"), Error);
  EXPECT_THROW(Address::parse("tcp:127.0.0.1"), Error);
  EXPECT_THROW(Address::parse("tcp:127.0.0.1:99999"), Error);
  EXPECT_THROW(Address::parse("unix:"), Error);
}

TEST(SocketFabric, DeliversBothDirectionsAndMeters) {
  run_socket_ranks(2, [](SocketFabric& fabric, int rank) {
    comm::Communicator comm(fabric, rank);
    if (rank == 0) {
      comm.send(1, 5, bytes_of({10, 20, 30}));
      const auto msg = comm.recv(1, 6);
      EXPECT_EQ(msg.payload, bytes_of({40}));
      EXPECT_EQ(fabric.bytes_sent(0), 3u);
      EXPECT_EQ(fabric.bytes_received(0), 1u);
    } else {
      const auto msg = comm.recv(0, 5);
      EXPECT_EQ(msg.payload, bytes_of({10, 20, 30}));
      comm.send(0, 6, bytes_of({40}));
      EXPECT_EQ(fabric.bytes_received(1), 3u);
      EXPECT_EQ(fabric.bytes_sent(1), 1u);
    }
  });
}

TEST(SocketFabric, ReassemblesInterleavedTagStreams) {
  // Chunked collectives put several tagged streams in flight on one
  // connection; the receiver may ask for them in any order. The per-peer
  // reader must park early frames by tag instead of failing the way the
  // strict in-process fabric does on a head-of-line mismatch.
  run_socket_ranks(2, [](SocketFabric& fabric, int rank) {
    comm::Communicator comm(fabric, rank);
    if (rank == 0) {
      comm.send(1, 101, bytes_of({1}));
      comm.send(1, 102, bytes_of({2}));
      comm.send(1, 103, bytes_of({3}));
    } else {
      EXPECT_EQ(comm.recv(0, 103).payload, bytes_of({3}));
      EXPECT_EQ(comm.recv(0, 101).payload, bytes_of({1}));
      EXPECT_EQ(comm.recv(0, 102).payload, bytes_of({2}));
    }
  });
}

TEST(SocketFabric, ZeroLengthPayloadRoundTrips) {
  run_socket_ranks(2, [](SocketFabric& fabric, int rank) {
    comm::Communicator comm(fabric, rank);
    if (rank == 0) {
      comm.send(1, 9, ByteBuffer{});
    } else {
      const auto msg = comm.recv(0, 9);
      EXPECT_TRUE(msg.payload.empty());
      EXPECT_EQ(msg.tag, 9u);
      EXPECT_EQ(fabric.bytes_received(1), 0u);
    }
  });
}

TEST(SocketFabric, RecvAfterPeerExitThrowsCleanly) {
  run_socket_ranks(2, [](SocketFabric& fabric, int rank) {
    comm::Communicator comm(fabric, rank);
    if (rank == 0) {
      // Say goodbye and exit; the fabric destructor closes the mesh.
      comm.send(1, 1, bytes_of({1}));
    } else {
      EXPECT_EQ(comm.recv(0, 1).payload, bytes_of({1}));
      // Rank 0 is gone (or going); waiting for a frame that will never
      // come must produce a loud error, not a hang.
      try {
        (void)comm.recv(0, 2);
        FAIL() << "recv after peer exit should throw";
      } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("closed"), std::string::npos)
            << e.what();
      }
    }
  });
}

TEST(SocketFabric, RecvTimesOutInsteadOfHanging) {
  std::atomic<bool> done{false};
  run_socket_ranks(
      2,
      [&](SocketFabric& fabric, int rank) {
        comm::Communicator comm(fabric, rank);
        if (rank == 0) {
          // Stay alive (so no EOF) until rank 1 has timed out.
          while (!done.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
          }
        } else {
          try {
            (void)comm.recv(0, 77);
            FAIL() << "recv with no sender should time out";
          } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find("timed out"),
                      std::string::npos)
                << e.what();
          }
          done.store(true);
        }
      },
      /*recv_timeout_ms=*/200);
}

TEST(SocketFabric, SelfSendLoopsBack) {
  run_socket_ranks(1, [](SocketFabric& fabric, int rank) {
    comm::Communicator comm(fabric, rank);
    comm.send(0, 3, bytes_of({9}));
    EXPECT_EQ(comm.recv(0, 3).payload, bytes_of({9}));
    EXPECT_EQ(fabric.bytes_sent(0), 1u);
    EXPECT_EQ(fabric.bytes_received(0), 1u);
  });
}

TEST(SocketFabric, OwnsOnlyLocalRank) {
  run_socket_ranks(2, [](SocketFabric& fabric, int rank) {
    const int other = 1 - rank;
    EXPECT_THROW(fabric.send(other, rank, 1, ByteBuffer{}),
                 std::logic_error);
    EXPECT_THROW((void)fabric.bytes_sent(other), std::logic_error);
  });
}

TEST(SocketFabric, ResetCountersFailsWithUnmatchedFrames) {
  run_socket_ranks(2, [](SocketFabric& fabric, int rank) {
    comm::Communicator comm(fabric, rank);
    if (rank == 0) {
      comm.send(1, 50, bytes_of({1}));
      comm.send(1, 51, bytes_of({2}));
      (void)comm.recv(1, 60);
    } else {
      // Receive the second tag only; tag 50 stays parked in the
      // reassembly buffer, so a counter reset must refuse.
      EXPECT_EQ(comm.recv(0, 51).payload, bytes_of({2}));
      EXPECT_THROW(fabric.reset_counters(), Error);
      EXPECT_EQ(comm.recv(0, 50).payload, bytes_of({1}));
      fabric.reset_counters();  // drained now — allowed
      EXPECT_EQ(fabric.bytes_sent(1), 0u);
      comm.send(0, 60, bytes_of({3}));
    }
  });
}

TEST(SocketFabric, ChunkedRingMatchesInProcessFabricBytesAndValues) {
  // The same chunked collective over both transports: identical reduced
  // payloads and identical per-rank wire meters (the byte-identity
  // contract the pipeline's socket backend relies on).
  const int n = 3;
  const std::size_t floats = 256;
  std::vector<ByteBuffer> inputs(n);
  for (int r = 0; r < n; ++r) {
    ByteWriter w(inputs[static_cast<std::size_t>(r)]);
    for (std::size_t i = 0; i < floats; ++i) {
      w.put<float>(static_cast<float>(r + 1) * 0.25f *
                   static_cast<float>(i % 17));
    }
  }
  const auto op = comm::make_fp32_sum();
  const auto chunks =
      comm::chunk_payload(inputs[0].size(), 128, op->granularity());

  comm::Fabric fabric(n);
  std::vector<ByteBuffer> in_process = inputs;
  comm::run_workers(fabric, [&](comm::Communicator& comm) {
    comm::chunked_ring_all_reduce(
        comm, in_process[static_cast<std::size_t>(comm.rank())], chunks,
        *op);
  });

  std::vector<ByteBuffer> over_sockets = inputs;
  std::vector<std::uint64_t> sent(n), received(n);
  run_socket_ranks(n, [&](SocketFabric& sf, int rank) {
    comm::Communicator comm(sf, rank);
    comm::chunked_ring_all_reduce(
        comm, over_sockets[static_cast<std::size_t>(rank)], chunks, *op);
    sent[static_cast<std::size_t>(rank)] = sf.bytes_sent(rank);
    received[static_cast<std::size_t>(rank)] = sf.bytes_received(rank);
  });

  for (int r = 0; r < n; ++r) {
    EXPECT_EQ(over_sockets[static_cast<std::size_t>(r)],
              in_process[static_cast<std::size_t>(r)])
        << "rank " << r;
    EXPECT_EQ(sent[static_cast<std::size_t>(r)], fabric.bytes_sent(r))
        << "rank " << r;
    EXPECT_EQ(received[static_cast<std::size_t>(r)],
              fabric.bytes_received(r))
        << "rank " << r;
  }
}

TEST(SocketFabric, TcpMeshWithWildcardListenerRewrite) {
  // TCP ranks bind the wildcard and advertise it; rank 0 must rewrite
  // the peer-map hosts to where each HELLO actually came from (here
  // 127.0.0.1) or the r<->s mesh connections cannot form. A 3-rank mesh
  // forces at least one non-rank-0 connection (1<->2). The port comes
  // from the kernel and stays reserved (bound, never listening) until the
  // fabric's own SO_REUSEPORT listener takes over, so socket suites can
  // run under `ctest -j` without colliding or losing the port in the
  // close-then-rebind window.
  ReservedTcpPort reserved;
  const std::string rendezvous =
      "tcp:127.0.0.1:" + std::to_string(reserved.port());
  const int n = 3;
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int rank = 0; rank < n; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        SocketFabricConfig config;
        config.rendezvous = rendezvous;
        config.world_size = n;
        config.rank = rank;
        SocketFabric fabric(config);
        comm::Communicator comm(fabric, rank);
        // Exercise the 1<->2 link specifically.
        if (rank == 1) {
          comm.send(2, 11, bytes_of({7}));
          EXPECT_EQ(comm.recv(2, 12).payload, bytes_of({8}));
        } else if (rank == 2) {
          EXPECT_EQ(comm.recv(1, 11).payload, bytes_of({7}));
          comm.send(1, 12, bytes_of({8}));
        } else {
          comm.send(1, 13, ByteBuffer{});
          comm.send(2, 13, ByteBuffer{});
        }
        if (rank != 0) (void)comm.recv(0, 13);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// A hand-driven peer speaking the raw rendezvous + framing protocol —
/// the only way to put deliberately mis-stamped frames on a real fabric
/// connection (the genuine SocketFabric always stamps its current epoch).
struct FakeRank {
  Socket link;

  /// Joins `rendezvous` as original rank 1 of a 2-rank world at `epoch`,
  /// leaving `link` as the 0<->1 data connection.
  void join(const std::string& rendezvous, std::uint64_t epoch) {
    const Address rz = Address::parse(rendezvous);
    link = connect_to(rz, 10000);
    ByteBuffer hello;
    ByteWriter w(hello);
    const std::string advertised = rendezvous + ".fake-listener";
    w.put<std::uint32_t>(static_cast<std::uint32_t>(advertised.size()));
    w.put_bytes(std::as_bytes(
        std::span(advertised.data(), advertised.size())));
    w.put<std::uint64_t>(0);  // resume round
    write_frame(link, 1, epoch, kHelloTag, hello);
    FrameHeader header;
    ByteBuffer map;
    GCS_CHECK(read_frame(link, header, map));
    GCS_CHECK(header.tag == kPeerMapTag);
    GCS_CHECK(header.epoch == epoch);
  }
};

TEST(SocketFabric, StaleEpochFrameIsRejectedNotMisdelivered) {
  // The epoch contract end to end: a straggler frame stamped with an
  // older epoch must be dropped by the reader — never parked where a
  // same-tag recv of the current epoch would consume stale data. The
  // fake rank joins epoch 0, dies, re-joins the rebuild as epoch 1, and
  // then sends two frames under one tag: a stale epoch-0 one first, the
  // genuine epoch-1 one second. recv must deliver the second.
  const std::string rendezvous = unique_unix_rendezvous();
  std::exception_ptr rank0_error;
  std::thread rank0([&] {
    try {
      SocketFabricConfig config;
      config.rendezvous = rendezvous;
      config.world_size = 2;
      config.rank = 0;
      config.elastic = true;
      config.rejoin_window_ms = 10000;
      config.recv_timeout_ms = 20000;  // bound the worst case, not 60 s
      SocketFabric fabric(config);
      comm::Communicator comm(fabric, 0);
      EXPECT_EQ(comm.recv(1, 4).payload, bytes_of({7}));
      // The fake rank closes its link: the next recv is a peer failure,
      // and the elastic answer is a rebuild into epoch 1.
      EXPECT_THROW((void)comm.recv(1, 5), comm::PeerFailure);
      const comm::Membership world = fabric.rebuild(0);
      EXPECT_EQ(world.epoch, 1u);
      ASSERT_EQ(world.world_size(), 2);
      // Tag 5 again, now in epoch 1: the stale epoch-0 frame arrives
      // first but must not be the one delivered.
      EXPECT_EQ(comm.recv(1, 5).payload, bytes_of({42}));
      EXPECT_GE(fabric.stale_frames_rejected(), 1u);
    } catch (...) {
      rank0_error = std::current_exception();
    }
  });

  // Anything the fake-rank side throws must still join the rank-0
  // thread first (a joinable std::thread dying in unwind is terminate),
  // and rank 0's own error is the more useful one to surface.
  std::exception_ptr fake_error;
  try {
    FakeRank fake;
    fake.join(rendezvous, 0);
    write_frame(fake.link, 1, 0, 4, bytes_of({7}));
    fake.link.close();  // "dies"

    // Rejoin the rebuild (rank 0 re-listens on the same address for
    // epoch 1; connect_to retries until the listener exists).
    fake.join(rendezvous, 1);
    write_frame(fake.link, 1, /*epoch=*/0, 5, bytes_of({9}));   // stale
    write_frame(fake.link, 1, /*epoch=*/1, 5, bytes_of({42}));  // genuine
  } catch (...) {
    fake_error = std::current_exception();
  }
  rank0.join();
  if (rank0_error) std::rethrow_exception(rank0_error);
  if (fake_error) std::rethrow_exception(fake_error);
}

TEST(ForkedWorkers, CollectsReportsAndPropagatesFailures) {
  ForkedWorkers ok(0, 3, [](int rank) {
    ByteBuffer b;
    b.push_back(static_cast<std::byte>(rank * 10));
    return b;
  });
  const auto reports = ok.join();
  ASSERT_EQ(reports.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(reports[static_cast<std::size_t>(r)],
              bytes_of({r * 10}));
  }

  ForkedWorkers failing(0, 2, [](int rank) -> ByteBuffer {
    if (rank == 1) throw Error("worker exploded");
    return {};
  });
  try {
    failing.join();
    FAIL() << "join should surface the child's exception";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("worker exploded"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gcs::net
