// Tests for quant/quantize: ranges, level bounds, unbiasedness, decode.
#include "quant/quantize.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "numeric/precision.h"

namespace gcs {
namespace {

TEST(QuantRange, ComputeRange) {
  const std::vector<float> x{0.5f, -1.0f, 2.0f};
  const auto r = compute_range(x);
  EXPECT_EQ(r.lo, -1.0f);
  EXPECT_EQ(r.hi, 2.0f);
  EXPECT_EQ(r.width(), 3.0f);
}

TEST(QuantRange, EmptyIsZero) {
  const auto r = compute_range({});
  EXPECT_EQ(r.lo, 0.0f);
  EXPECT_EQ(r.hi, 0.0f);
}

TEST(QuantRange, MergeIsEnvelope) {
  const auto m = merge_ranges({-1.0f, 2.0f}, {-3.0f, 1.0f});
  EXPECT_EQ(m.lo, -3.0f);
  EXPECT_EQ(m.hi, 2.0f);
}

TEST(Quantize, LevelsWithinBounds) {
  Rng rng(1);
  std::vector<float> x(1000);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  const auto range = compute_range(x);
  std::vector<std::uint16_t> levels(x.size());
  for (unsigned q : {1u, 2u, 4u, 8u}) {
    quantize_stochastic(x, range, q, rng, levels);
    for (auto l : levels) EXPECT_LT(l, 1u << q);
  }
}

TEST(Quantize, NearestIsDeterministicAndClose) {
  const std::vector<float> x{0.0f, 0.26f, 0.74f, 1.0f};
  std::vector<std::uint16_t> levels(4);
  quantize_nearest(x, {0.0f, 1.0f}, 2, levels);
  // Grid {0, 1/3, 2/3, 1}.
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], 2);
  EXPECT_EQ(levels[3], 3);
}

TEST(Quantize, RoundTripErrorBoundedByStep) {
  Rng rng(2);
  std::vector<float> x(2000);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  const auto range = compute_range(x);
  std::vector<std::uint16_t> levels(x.size());
  for (unsigned q : {2u, 4u, 8u}) {
    quantize_stochastic(x, range, q, rng, levels);
    const float step = range.width() / static_cast<float>((1u << q) - 1u);
    for (std::size_t i = 0; i < x.size(); ++i) {
      const float back = dequantize_level(levels[i], range, q);
      EXPECT_LE(std::fabs(back - x[i]), step * 1.0001f) << "q=" << q;
    }
  }
}

TEST(Quantize, MoreBitsLessError) {
  Rng rng(3);
  std::vector<float> x(5000);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  const auto range = compute_range(x);
  std::vector<std::uint16_t> levels(x.size());
  double prev_mse = 1e300;
  for (unsigned q : {2u, 4u, 8u}) {
    quantize_stochastic(x, range, q, rng, levels);
    double err = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double diff = dequantize_level(levels[i], range, q) - x[i];
      err += diff * diff;
    }
    EXPECT_LT(err, prev_mse);
    prev_mse = err;
  }
}

TEST(Quantize, DegenerateRangeMapsToLo) {
  const std::vector<float> x{5.0f, 5.0f};
  std::vector<std::uint16_t> levels(2);
  Rng rng(4);
  quantize_stochastic(x, {5.0f, 5.0f}, 4, rng, levels);
  EXPECT_EQ(levels[0], 0);
  EXPECT_EQ(dequantize_level(levels[0], {5.0f, 5.0f}, 4), 5.0f);
}

TEST(Dequantize, SpanMatchesScalar) {
  const std::vector<std::uint16_t> levels{0, 7, 15};
  std::vector<float> out(3);
  dequantize(levels, {-1.0f, 1.0f}, 4, out);
  EXPECT_EQ(out[0], -1.0f);
  EXPECT_NEAR(out[2], 1.0f, 1e-6f);
  EXPECT_NEAR(out[1], -1.0f + 2.0f * 7.0f / 15.0f, 1e-6f);
}

TEST(DequantizeLevelSum, MatchesSumOfDequantizedLevels) {
  const QuantRange range{-2.0f, 3.0f};
  const unsigned q = 4;
  const std::vector<std::uint32_t> levels{3, 9, 15, 0};
  double expected = 0.0;
  std::int64_t level_sum = 0;
  for (auto l : levels) {
    expected += dequantize_level(l, range, q);
    level_sum += l;
  }
  const float got = dequantize_level_sum(
      level_sum, static_cast<unsigned>(levels.size()), range, q);
  EXPECT_NEAR(got, expected, 1e-4f);
}

// Property: the homomorphic decode of aggregated stochastic levels is an
// unbiased estimate of the true sum (shared range across "workers").
TEST(Quantize, AggregatedDecodeIsUnbiased) {
  Rng rng(5);
  const unsigned q = 4;
  const QuantRange range{-4.0f, 4.0f};
  const std::vector<float> values{-2.5f, 0.3f, 1.9f, 3.2f};
  double true_sum = 0.0;
  for (float v : values) true_sum += v;
  double acc = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::int64_t level_sum = 0;
    for (float v : values) {
      level_sum += stochastic_level(v, range.lo, range.hi, q,
                                    rng.next_float());
    }
    acc += dequantize_level_sum(level_sum,
                                static_cast<unsigned>(values.size()), range,
                                q);
  }
  EXPECT_NEAR(acc / trials, true_sum, 0.02);
}

}  // namespace
}  // namespace gcs
