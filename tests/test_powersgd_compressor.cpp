// Tests for core/powersgd_compressor: rank behaviour, payload accounting,
// warm-start improvement, EF semantics, exact vector transmission.
#include "core/powersgd_compressor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/vnmse.h"

namespace gcs::core {
namespace {

std::vector<std::vector<float>> random_grads(int n, std::size_t d,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> grads(n, std::vector<float>(d));
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[w]) v = static_cast<float>(rng.next_gaussian());
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

ModelLayout two_matrix_layout() {
  return ModelLayout({{"w0", 32, 24}, {"b0", 32, 1}, {"w1", 16, 32}});
}

TEST(PowerSgd, PathAndName) {
  PowerSgdConfig config;
  config.layout = two_matrix_layout();
  config.world_size = 2;
  config.rank = 4;
  auto c = make_powersgd(config);
  EXPECT_EQ(c->path(), AggregationPath::kAllReduce);
  EXPECT_EQ(c->name(), "PowerSGD-4");
}

TEST(PowerSgd, PayloadMatchesRankFormula) {
  // Low-rank layers contribute 16 r (rows + cols) bits; the bias vector
  // travels dense in FP16.
  PowerSgdConfig config;
  config.layout = two_matrix_layout();
  config.world_size = 2;
  config.rank = 4;
  config.error_feedback = false;
  auto c = make_powersgd(config);
  const std::size_t d = config.layout.total_size();
  const auto grads = random_grads(2, d, 1);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  const std::size_t expected =
      2 * (4 * (32 + 24)) +  // w0: P (32x4) + Q (24x4) in fp16
      2 * 32 +               // b0 dense fp16
      2 * (4 * (16 + 32));   // w1
  EXPECT_EQ(stats.payload_bytes, expected);
}

TEST(PowerSgd, BiasVectorsTransmittedExactly) {
  PowerSgdConfig config;
  config.layout = ModelLayout({{"w", 16, 16}, {"b", 8, 1}});
  config.world_size = 2;
  config.rank = 2;
  config.error_feedback = false;
  auto c = make_powersgd(config);
  const std::size_t d = config.layout.total_size();
  std::vector<std::vector<float>> grads(2, std::vector<float>(d, 0.0f));
  // Bias region: offsets 256..263.
  for (std::size_t i = 256; i < 264; ++i) {
    grads[0][i] = 1.5f;
    grads[1][i] = 2.5f;
  }
  std::vector<float> out(d);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  for (std::size_t i = 256; i < 264; ++i) {
    EXPECT_NEAR(out[i], 4.0f, 0.01f);
  }
}

TEST(PowerSgd, ExactForRankDeficientGradients) {
  // Identical rank-1 gradients with rank >= 1 reconstruct (near) exactly.
  const std::size_t rows = 20, cols = 12;
  PowerSgdConfig config;
  config.layout = ModelLayout({{"w", rows, cols}});
  config.world_size = 2;
  config.rank = 2;
  config.error_feedback = false;
  auto c = make_powersgd(config);
  Rng rng(3);
  std::vector<float> u(rows), v(cols);
  for (auto& x : u) x = static_cast<float>(rng.next_gaussian());
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  std::vector<std::vector<float>> grads(
      2, std::vector<float>(rows * cols));
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      grads[0][i * cols + j] = u[i] * v[j];
      grads[1][i * cols + j] = u[i] * v[j];
    }
  }
  std::vector<float> out(rows * cols);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], 2.0f * grads[0][i],
                0.02f * std::fabs(grads[0][i]) + 0.02f)
        << i;
  }
}

TEST(PowerSgd, HigherRankLowerError) {
  PowerSgdConfig config;
  config.layout = ModelLayout({{"w", 48, 48}});
  config.world_size = 2;
  config.error_feedback = false;
  const auto grads = random_grads(2, 48 * 48, 5);
  const auto views = views_of(grads);
  double prev = 1e9;
  for (std::size_t r : {1u, 4u, 16u}) {
    config.rank = r;
    auto c = make_powersgd(config);
    std::vector<float> out(48 * 48);
    c->aggregate(views, out, 0);
    const double err =
        vnmse(out, std::span<const std::span<const float>>(views));
    EXPECT_LT(err, prev) << r;
    prev = err;
  }
}

TEST(PowerSgd, WarmStartImprovesOverRounds) {
  // Feeding the same gradient repeatedly: the power iteration converges
  // to the dominant subspace and the error drops monotonically-ish.
  PowerSgdConfig config;
  config.layout = ModelLayout({{"w", 40, 40}});
  config.world_size = 2;
  config.rank = 4;
  config.error_feedback = false;
  auto c = make_powersgd(config);
  const auto grads = random_grads(2, 1600, 7);
  const auto views = views_of(grads);
  std::vector<float> out(1600);
  c->aggregate(views, out, 0);
  const double first =
      vnmse(out, std::span<const std::span<const float>>(views));
  for (int r = 1; r < 8; ++r) c->aggregate(views, out, r);
  const double later =
      vnmse(out, std::span<const std::span<const float>>(views));
  EXPECT_LT(later, first);
}

TEST(PowerSgd, ErrorFeedbackAccumulatesResidual) {
  // With EF on, cumulative aggregates track cumulative true sums far
  // better than without (residual is re-fed).
  PowerSgdConfig config;
  config.layout = ModelLayout({{"w", 32, 32}});
  config.world_size = 2;
  config.rank = 1;
  const std::size_t d = 1024;
  config.error_feedback = true;
  auto c_ef = make_powersgd(config);
  config.error_feedback = false;
  auto c_no = make_powersgd(config);
  std::vector<double> cum_true(d, 0.0), cum_ef(d, 0.0), cum_no(d, 0.0);
  std::vector<float> out(d);
  for (int r = 0; r < 25; ++r) {
    auto grads = random_grads(2, d, 100 + r);
    const auto views = views_of(grads);
    for (std::size_t i = 0; i < d; ++i) {
      cum_true[i] += grads[0][i] + grads[1][i];
    }
    c_ef->aggregate(views, out, r);
    for (std::size_t i = 0; i < d; ++i) cum_ef[i] += out[i];
    c_no->aggregate(views, out, r);
    for (std::size_t i = 0; i < d; ++i) cum_no[i] += out[i];
  }
  double err_ef = 0.0, err_no = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    err_ef += (cum_ef[i] - cum_true[i]) * (cum_ef[i] - cum_true[i]);
    err_no += (cum_no[i] - cum_true[i]) * (cum_no[i] - cum_true[i]);
  }
  EXPECT_LT(err_ef, err_no);
}

TEST(PowerSgd, ResetRestoresInitialState) {
  PowerSgdConfig config;
  config.layout = ModelLayout({{"w", 16, 16}});
  config.world_size = 2;
  config.rank = 2;
  config.error_feedback = false;
  auto c = make_powersgd(config);
  const auto grads = random_grads(2, 256, 9);
  const auto views = views_of(grads);
  std::vector<float> first(256), again(256);
  c->aggregate(views, first, 0);
  c->aggregate(views, again, 1);  // warm start shifts the result
  c->reset();
  std::vector<float> after_reset(256);
  c->aggregate(views, after_reset, 0);
  EXPECT_EQ(first, after_reset);
}

TEST(PowerSgd, TinyRankOneLayersGoDense) {
  // A layout of only vectors: everything is transmitted exactly; the
  // aggregate equals the true sum up to fp16.
  PowerSgdConfig config;
  config.layout = ModelLayout({{"b0", 10, 1}, {"b1", 6, 1}});
  config.world_size = 3;
  config.rank = 4;
  config.error_feedback = false;
  auto c = make_powersgd(config);
  const auto grads = random_grads(3, 16, 11);
  std::vector<float> out(16);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  for (std::size_t i = 0; i < 16; ++i) {
    const double sum = grads[0][i] + grads[1][i] + grads[2][i];
    EXPECT_NEAR(out[i], sum, std::fabs(sum) / 256.0 + 1e-2);
  }
}

}  // namespace
}  // namespace gcs::core
