// Byte-level adversary against the reactor's reassembly machine.
//
// The epoll reactor (net/reactor.h) reassembles GCSF frames from
// arbitrary kernel segmentation: the adversary here feeds it streams cut
// at random byte boundaries, interleaved across channels, with random
// frame/payload sizes — then ends each stream with a randomly chosen
// fate: a clean EOF, a truncated header, a truncated payload, a corrupt
// magic, an implausible length, or a frame the sink itself rejects. The
// contract under fuzz is reject-or-deliver, never crash or mis-deliver:
//
//   * every well-formed frame before the corruption point is delivered
//     exactly once, in order, with byte-identical header and payload;
//   * nothing after the corruption point is ever delivered;
//   * the channel closes exactly once, with a reason that names what
//     actually happened.
//
// Runs are reproducible: the seed is logged on every run and can be
// pinned with GCS_FUZZ_SEED=<n> to replay a failure.
#include "net/reactor.h"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "net/framing.h"
#include "net/socket.h"

namespace gcs::net {
namespace {

std::uint64_t fuzz_seed() {
  if (const char* env = std::getenv("GCS_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return std::random_device{}();
}

/// One expected well-formed frame.
struct ExpectedFrame {
  std::uint32_t src_rank = 0;
  std::uint64_t epoch = 0;
  std::uint64_t tag = 0;
  ByteBuffer payload;
};

/// How a channel's stream ends.
enum class Fate {
  kCleanEof,         // close at a frame boundary
  kTruncatedHeader,  // EOF inside the 32-byte header
  kTruncatedPayload, // full header, EOF inside the payload
  kBadMagic,         // full header with corrupt magic
  kOversizedLength,  // full header with length > kMaxFramePayload
  kSinkRejects,      // well-formed frame the sink throws on
};
constexpr int kFateCount = 6;

/// Frames with this tag make the fuzz sink throw (the reactor must treat
/// that like any torn frame: close the channel, deliver nothing more).
constexpr std::uint64_t kPoisonTag = 0xdead'beef'dead'beefull;

/// Thread-safe recorder for one channel's delivered frames + close.
class RecordingSink final : public Reactor::Sink {
 public:
  void on_frame(const FrameHeader& header, ByteBuffer payload) override {
    if (header.tag == kPoisonTag) {
      throw Error("fuzz sink rejected poison frame");
    }
    std::lock_guard lock(mu_);
    ExpectedFrame f;
    f.src_rank = header.src_rank;
    f.epoch = header.epoch;
    f.tag = header.tag;
    f.payload = std::move(payload);
    delivered_.push_back(std::move(f));
    cv_.notify_all();
  }

  void on_close(const std::string& reason) override {
    std::lock_guard lock(mu_);
    ++closes_;
    close_reason_ = reason;
    cv_.notify_all();
  }

  void wait_closed() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closes_ > 0; });
  }

  void wait_frames(std::size_t n) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return delivered_.size() >= n || closes_ > 0; });
  }

  int closes() const {
    std::lock_guard lock(mu_);
    return closes_;
  }
  std::string close_reason() const {
    std::lock_guard lock(mu_);
    return close_reason_;
  }
  std::vector<ExpectedFrame> delivered() const {
    std::lock_guard lock(mu_);
    return delivered_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ExpectedFrame> delivered_;
  int closes_ = 0;
  std::string close_reason_;
};

/// One channel's scripted stream: the exact bytes to put on the wire and
/// the frames the reactor must hand the sink back.
struct ChannelPlan {
  Fate fate = Fate::kCleanEof;
  std::vector<ExpectedFrame> expected;  ///< must be delivered, in order
  ByteBuffer wire;                      ///< full stream incl. corruption
};

ByteBuffer random_payload(std::mt19937_64& rng) {
  // Mostly small (header-coalescing territory), occasionally large
  // enough to span many readv calls.
  std::uniform_int_distribution<int> kind(0, 9);
  std::size_t size;
  if (kind(rng) == 0) {
    size = std::uniform_int_distribution<std::size_t>(8192, 65536)(rng);
  } else {
    size = std::uniform_int_distribution<std::size_t>(0, 512)(rng);
  }
  ByteBuffer p(size);
  for (std::size_t i = 0; i < size; ++i) {
    p[i] = static_cast<std::byte>(rng() & 0xff);
  }
  return p;
}

void append_frame(ByteBuffer& wire, const ExpectedFrame& f) {
  std::byte header[kFrameHeaderBytes];
  encode_frame_header(header, f.src_rank, f.epoch, f.tag, f.payload.size());
  wire.insert(wire.end(), header, header + kFrameHeaderBytes);
  wire.insert(wire.end(), f.payload.begin(), f.payload.end());
}

ChannelPlan make_plan(std::mt19937_64& rng, Fate fate) {
  ChannelPlan plan;
  plan.fate = fate;
  const int frames = std::uniform_int_distribution<int>(0, 10)(rng);
  for (int i = 0; i < frames; ++i) {
    ExpectedFrame f;
    f.src_rank = static_cast<std::uint32_t>(rng() & 0xffff);
    f.epoch = rng() & 0xffff;
    f.tag = rng();
    if (f.tag == kPoisonTag) f.tag = 0;  // poison only when scripted
    f.payload = random_payload(rng);
    append_frame(plan.wire, f);
    plan.expected.push_back(std::move(f));
  }

  switch (fate) {
    case Fate::kCleanEof:
      break;
    case Fate::kTruncatedHeader: {
      ExpectedFrame f;
      f.tag = 1;
      f.payload = random_payload(rng);
      ByteBuffer whole;
      append_frame(whole, f);
      const std::size_t keep =
          std::uniform_int_distribution<std::size_t>(1,
                                                     kFrameHeaderBytes - 1)(
              rng);
      plan.wire.insert(plan.wire.end(), whole.begin(),
                       whole.begin() + static_cast<std::ptrdiff_t>(keep));
      break;
    }
    case Fate::kTruncatedPayload: {
      ExpectedFrame f;
      f.tag = 2;
      f.payload = random_payload(rng);
      f.payload.resize(std::max<std::size_t>(f.payload.size(), 2));
      ByteBuffer whole;
      append_frame(whole, f);
      const std::size_t cut = std::uniform_int_distribution<std::size_t>(
          0, f.payload.size() - 1)(rng);
      plan.wire.insert(
          plan.wire.end(), whole.begin(),
          whole.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes +
                                                      cut));
      break;
    }
    case Fate::kBadMagic: {
      std::byte header[kFrameHeaderBytes];
      encode_frame_header(header, 0, 0, 3, 16);
      header[0] = static_cast<std::byte>(0x00);  // corrupt the magic
      plan.wire.insert(plan.wire.end(), header,
                       header + kFrameHeaderBytes);
      break;
    }
    case Fate::kOversizedLength: {
      std::byte header[kFrameHeaderBytes];
      encode_frame_header(header, 0, 0, 4, kMaxFramePayload + 1);
      plan.wire.insert(plan.wire.end(), header,
                       header + kFrameHeaderBytes);
      break;
    }
    case Fate::kSinkRejects: {
      ExpectedFrame poison;
      poison.tag = kPoisonTag;
      poison.payload = random_payload(rng);
      append_frame(plan.wire, poison);
      // A trailing well-formed frame that must NOT be delivered: the
      // channel died at the poison frame.
      ExpectedFrame after;
      after.tag = 5;
      after.payload = random_payload(rng);
      append_frame(plan.wire, after);
      break;
    }
  }
  return plan;
}

void check_close_reason(const ChannelPlan& plan, const std::string& reason) {
  const auto contains = [&](const char* needle) {
    return reason.find(needle) != std::string::npos;
  };
  switch (plan.fate) {
    case Fate::kCleanEof:
      EXPECT_EQ(reason, "peer exited");
      break;
    case Fate::kTruncatedHeader:
      EXPECT_TRUE(contains("socket closed mid-read")) << reason;
      break;
    case Fate::kTruncatedPayload:
      EXPECT_TRUE(contains("socket closed")) << reason;
      break;
    case Fate::kBadMagic:
      EXPECT_TRUE(contains("bad magic")) << reason;
      break;
    case Fate::kOversizedLength:
      EXPECT_TRUE(contains("implausible payload length")) << reason;
      break;
    case Fate::kSinkRejects:
      EXPECT_TRUE(contains("poison")) << reason;
      break;
  }
}

TEST(ReactorFuzz, RandomSegmentationRejectsOrDeliversNeverMisdelivers) {
  const std::uint64_t seed = fuzz_seed();
  std::cerr << "[reactor-fuzz] seed=" << seed
            << " (replay: GCS_FUZZ_SEED=" << seed << ")\n";
  std::mt19937_64 rng(seed);

  constexpr int kRounds = 4;
  constexpr int kChannels = 8;
  for (int round = 0; round < kRounds; ++round) {
    // Sinks outlive the reactor: the loop thread may deliver a late
    // on_close right up until ~Reactor joins it.
    std::vector<std::unique_ptr<RecordingSink>> sinks;
    Reactor reactor;
    std::vector<ChannelPlan> plans;
    std::vector<Socket> writers;

    for (int c = 0; c < kChannels; ++c) {
      // Cycle through every fate each round, extra slots random.
      const Fate fate = static_cast<Fate>(
          c < kFateCount
              ? c
              : std::uniform_int_distribution<int>(0, kFateCount - 1)(rng));
      plans.push_back(make_plan(rng, fate));
      sinks.push_back(std::make_unique<RecordingSink>());
      int fds[2];
      ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
      reactor.add_channel(Socket(fds[0]), sinks.back().get());
      writers.emplace_back(fds[1]);
    }

    // Drip the streams onto the wire in random-size segments, hopping
    // between channels so partial frames interleave arbitrarily — the
    // adversarial version of kernel segmentation.
    std::vector<std::size_t> cursor(kChannels, 0);
    std::vector<int> open;
    for (int c = 0; c < kChannels; ++c) open.push_back(c);
    while (!open.empty()) {
      const std::size_t pick = std::uniform_int_distribution<std::size_t>(
          0, open.size() - 1)(rng);
      const int c = open[pick];
      const ChannelPlan& plan = plans[static_cast<std::size_t>(c)];
      std::size_t& at = cursor[static_cast<std::size_t>(c)];
      if (at >= plan.wire.size()) {
        writers[static_cast<std::size_t>(c)].close();  // EOF
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
        continue;
      }
      const std::size_t n = std::min<std::size_t>(
          std::uniform_int_distribution<std::size_t>(1, 4096)(rng),
          plan.wire.size() - at);
      try {
        writers[static_cast<std::size_t>(c)].write_all(plan.wire.data() + at,
                                                       n);
        at += n;
      } catch (const Error&) {
        // The reactor already closed a corrupted channel: writes past the
        // corruption point hit EPIPE. Nothing after that point matters —
        // the delivered-frame assertions below still check the prefix.
        writers[static_cast<std::size_t>(c)].close();
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }

    for (int c = 0; c < kChannels; ++c) {
      const ChannelPlan& plan = plans[static_cast<std::size_t>(c)];
      RecordingSink& sink = *sinks[static_cast<std::size_t>(c)];
      sink.wait_closed();
      EXPECT_EQ(sink.closes(), 1) << "round " << round << " channel " << c;
      check_close_reason(plan, sink.close_reason());

      const std::vector<ExpectedFrame> got = sink.delivered();
      ASSERT_EQ(got.size(), plan.expected.size())
          << "round " << round << " channel " << c << " fate "
          << static_cast<int>(plan.fate) << " reason '"
          << sink.close_reason() << "'";
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].src_rank, plan.expected[i].src_rank);
        EXPECT_EQ(got[i].epoch, plan.expected[i].epoch);
        EXPECT_EQ(got[i].tag, plan.expected[i].tag);
        ASSERT_EQ(got[i].payload, plan.expected[i].payload)
            << "round " << round << " channel " << c << " frame " << i;
      }
    }
  }
}

TEST(ReactorFuzz, SendPathRoundTripsThroughCoalescingFlush) {
  // The send side under the same randomness: frames queued on one end of
  // a socketpair (coalescing writev, EPOLLOUT residue, backpressure) must
  // reassemble byte-identically on the other end — both ends channels of
  // the same reactor.
  const std::uint64_t seed = fuzz_seed() ^ 0x5eed'f00dull;
  std::cerr << "[reactor-fuzz] send-path seed=" << seed << "\n";
  std::mt19937_64 rng(seed);

  constexpr int kPairs = 4;
  constexpr int kFramesPerPair = 200;
  // Sinks before the reactor: they must survive until ~Reactor joins
  // the loop thread (shutdown_channel reports tx closes asynchronously).
  std::vector<std::unique_ptr<RecordingSink>> rx_sinks;
  std::vector<std::unique_ptr<RecordingSink>> tx_sinks;
  Reactor reactor;
  std::vector<int> tx_channels;
  std::vector<std::vector<ExpectedFrame>> sent(kPairs);

  for (int p = 0; p < kPairs; ++p) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    tx_sinks.push_back(std::make_unique<RecordingSink>());
    rx_sinks.push_back(std::make_unique<RecordingSink>());
    tx_channels.push_back(
        reactor.add_channel(Socket(fds[0]), tx_sinks.back().get()));
    reactor.add_channel(Socket(fds[1]), rx_sinks.back().get());
  }

  for (int i = 0; i < kFramesPerPair; ++i) {
    for (int p = 0; p < kPairs; ++p) {
      ExpectedFrame f;
      f.src_rank = static_cast<std::uint32_t>(p);
      f.epoch = 7;
      f.tag = static_cast<std::uint64_t>(i);
      f.payload = random_payload(rng);
      reactor.send(tx_channels[static_cast<std::size_t>(p)], f.src_rank,
                   f.epoch, f.tag, f.payload);
      sent[static_cast<std::size_t>(p)].push_back(std::move(f));
    }
  }

  // Wait for full delivery BEFORE tearing the pairs down: a shutdown
  // while EAGAIN residue is still queued would drop tail frames by
  // design (the peer is being declared dead), which is not what this
  // test measures.
  for (int p = 0; p < kPairs; ++p) {
    rx_sinks[static_cast<std::size_t>(p)]->wait_frames(kFramesPerPair);
  }
  // Then EOF the transmit side: the receive channels close cleanly.
  for (int p = 0; p < kPairs; ++p) {
    reactor.shutdown_channel(tx_channels[static_cast<std::size_t>(p)]);
  }
  for (int p = 0; p < kPairs; ++p) {
    rx_sinks[static_cast<std::size_t>(p)]->wait_closed();
    const auto got = rx_sinks[static_cast<std::size_t>(p)]->delivered();
    const auto& want = sent[static_cast<std::size_t>(p)];
    ASSERT_EQ(got.size(), want.size()) << "pair " << p;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].tag, want[i].tag);
      ASSERT_EQ(got[i].payload, want[i].payload)
          << "pair " << p << " frame " << i;
    }
  }
  const Reactor::Stats s = reactor.stats();
  EXPECT_GE(s.frames_flushed, static_cast<std::uint64_t>(kPairs) *
                                  static_cast<std::uint64_t>(kFramesPerPair));
  EXPECT_GT(s.flush_calls, 0u);
}

TEST(ReactorFuzz, BackpressuredQueueCoalescesFramesPerWritev) {
  // Deterministic coalescing proof. A large "plug" frame fills the
  // socketpair buffer (nobody reads yet), so every following small frame
  // fails its opportunistic inline flush with EAGAIN and queues. Only
  // when this thread starts draining the peer end does EPOLLOUT fire —
  // and the reactor must then flush the backlog in scatter-gather
  // batches, many frames per writev, not one syscall per frame.
  // Sink before the reactor: closing rx below hangs up the tx channel,
  // and the loop thread reports that on_close until ~Reactor joins it.
  RecordingSink tx_sink;
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int tx = reactor.add_channel(Socket(fds[0]), &tx_sink);
  Socket rx(fds[1]);

  constexpr std::size_t kPlugBytes = std::size_t{4} << 20;
  constexpr int kSmallFrames = 300;
  reactor.send(tx, 0, 0, 1, ByteBuffer(kPlugBytes));
  for (int i = 0; i < kSmallFrames; ++i) {
    reactor.send(tx, 0, 0, 100 + static_cast<std::uint64_t>(i),
                 ByteBuffer(16));
  }

  // Drain the peer side; every frame must come back intact and in order.
  FrameHeader header;
  ByteBuffer payload;
  ASSERT_TRUE(read_frame(rx, header, payload));
  EXPECT_EQ(header.tag, 1u);
  EXPECT_EQ(payload.size(), kPlugBytes);
  for (int i = 0; i < kSmallFrames; ++i) {
    ASSERT_TRUE(read_frame(rx, header, payload)) << "frame " << i;
    EXPECT_EQ(header.tag, 100 + static_cast<std::uint64_t>(i));
    EXPECT_EQ(payload.size(), 16u);
  }

  const Reactor::Stats s = reactor.stats();
  EXPECT_EQ(s.frames_flushed, static_cast<std::uint64_t>(kSmallFrames) + 1);
  // The backlog of small frames coalesced: far fewer writev calls than
  // frames. (The plug itself may take several partial writevs; even
  // charging all of those, 300 queued frames must not cost 300 flushes.)
  EXPECT_LT(s.flush_calls, static_cast<std::uint64_t>(kSmallFrames) / 2);
}

}  // namespace
}  // namespace gcs::net
