// Fault-injection harness for the elastic socket transport
// (DESIGN.md "Fault tolerance").
//
// run_world forks one OS process per rank of a real SocketFabric world,
// runs a fixed number of aggregation rounds with deterministic
// per-original-rank gradients, and kills a chosen victim rank at a chosen
// phase of a chosen round:
//
//   kPreRendezvous  — the victim exits before ever joining the mesh; the
//                     elastic epoch-0 rendezvous must shrink the world.
//   kMidEncode      — the victim dies after encoding its first payload of
//                     the round, before a single byte hits the wire.
//   kMidCollective  — the victim dies after a few frames of a chunked
//                     collective are already in flight (a kill-switch
//                     transport counts sends and _exit()s mid-stream).
//   kMidDecode      — the victim dies after the round's commit barrier,
//                     before finish(): the round commits cluster-wide and
//                     the failure surfaces at the next round's first op.
//
// Each rank reports its per-round aggregated-output hash, the world size
// and epoch the round committed in, and its final error-feedback
// fingerprints. reference_run computes the ground truth the acceptance
// criterion demands — a fresh (world-1) continuation seeded with the
// survivors' carried-over EF state via SchemeCodec::remap_workers on the
// bit-exact local backend — so the test can assert survivors' gradients
// are bit-identical to it, round by round.
//
// The harness runs identically with elastic off, which is how the
// loud-failure regression test pins today's contract: a peer exit
// mid-round throws on every surviving rank within the peer timeout.
#pragma once

#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "comm/transport.h"
#include "comm/transport_decorators.h"
#include "core/aggregation_pipeline.h"
#include "core/factory.h"
#include "core/synthetic_grad.h"
#include "measure/trace.h"
#include "net/launcher.h"
#include "net/socket_fabric.h"
#include "telemetry/chrome_trace.h"
#include "tensor/layout.h"

namespace gcs::testing {

enum class KillPhase {
  kPreRendezvous,
  kMidEncode,
  kMidCollective,
  kMidDecode,
};

inline const char* to_string(KillPhase phase) {
  switch (phase) {
    case KillPhase::kPreRendezvous: return "pre-rendezvous";
    case KillPhase::kMidEncode: return "mid-encode";
    case KillPhase::kMidCollective: return "mid-collective";
    case KillPhase::kMidDecode: return "mid-decode";
  }
  return "?";
}

struct FaultPlan {
  int victim = -1;  ///< original rank to kill; -1 = nobody dies
  KillPhase phase = KillPhase::kMidEncode;
  int round = 0;  ///< the round the kill fires in
};

struct WorldConfig {
  std::string scheme = "topkc:b=8";
  int world = 4;
  int rounds = 7;
  std::size_t dim = 1024;
  std::size_t chunk = 256;
  std::uint64_t seed = 777;
  bool elastic = true;
  int peer_timeout_ms = 10000;
  int rejoin_window_ms = 800;
  /// Socket I/O engine under test. The full kill matrix runs on the
  /// default reactor; a threaded-engine smoke run keeps the legacy
  /// engine honest (tests/test_fault_injection.cpp).
  net::SocketIoMode io = net::SocketIoMode::kReactor;
  /// Per-rank log directory (created if missing); empty = no logs. CI
  /// uploads these as artefacts when the kill matrix fails.
  std::string log_dir;
};

/// Worker `original_rank`'s gradient for a round — the same recipe on
/// every process and in the reference run, keyed by the worker's
/// immutable identity so survivors keep their gradient stream across
/// membership changes.
inline std::vector<float> grad_for(const WorldConfig& config,
                                   std::uint64_t round, int original_rank) {
  auto all = core::seeded_worker_grads(config.dim, config.world,
                                       config.seed, round);
  return std::move(all[static_cast<std::size_t>(original_rank)]);
}

/// FNV-1a over raw float bytes: bit-identity is the claim, so a byte
/// hash is the right probe (and small enough to ship over the report
/// pipe for every round).
inline std::uint64_t fnv64(std::span<const float> values) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(values.data());
  for (std::size_t i = 0; i < values.size() * sizeof(float); ++i) {
    h = (h ^ bytes[i]) * 1099511628211ull;
  }
  return h;
}

/// One committed round, as a rank observed it.
struct RoundRecord {
  std::uint64_t round = 0;
  std::uint64_t epoch = 0;
  int world = 0;
  std::uint64_t out_hash = 0;

  bool operator==(const RoundRecord&) const = default;
};

/// A rank's report: what committed, what failed, and the EF fingerprints
/// it ended with (keyed by original rank).
struct RankReport {
  bool completed = false;
  std::vector<RoundRecord> rounds;
  std::vector<std::pair<int, std::uint64_t>> ef_hashes;
  std::string error;           ///< non-empty when the run threw
  std::uint64_t fail_elapsed_ms = 0;  ///< round start -> throw
};

inline ByteBuffer serialize_report(const RankReport& report) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.put<std::uint8_t>(report.completed ? 1 : 0);
  w.put<std::uint64_t>(report.fail_elapsed_ms);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(report.error.size()));
  w.put_bytes(std::as_bytes(
      std::span(report.error.data(), report.error.size())));
  w.put<std::uint32_t>(static_cast<std::uint32_t>(report.rounds.size()));
  for (const auto& r : report.rounds) {
    w.put<std::uint64_t>(r.round);
    w.put<std::uint64_t>(r.epoch);
    w.put<std::uint32_t>(static_cast<std::uint32_t>(r.world));
    w.put<std::uint64_t>(r.out_hash);
  }
  w.put<std::uint32_t>(static_cast<std::uint32_t>(report.ef_hashes.size()));
  for (const auto& [original, hash] : report.ef_hashes) {
    w.put<std::uint32_t>(static_cast<std::uint32_t>(original));
    w.put<std::uint64_t>(hash);
  }
  return buf;
}

inline RankReport parse_report(const ByteBuffer& buf) {
  RankReport report;
  ByteReader r(buf);
  report.completed = r.get<std::uint8_t>() != 0;
  report.fail_elapsed_ms = r.get<std::uint64_t>();
  const auto error_len = r.get<std::uint32_t>();
  const auto error_bytes = r.get_bytes(error_len);
  report.error.assign(reinterpret_cast<const char*>(error_bytes.data()),
                      error_bytes.size());
  const auto rounds = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < rounds; ++i) {
    RoundRecord rec;
    rec.round = r.get<std::uint64_t>();
    rec.epoch = r.get<std::uint64_t>();
    rec.world = static_cast<int>(r.get<std::uint32_t>());
    rec.out_hash = r.get<std::uint64_t>();
    report.rounds.push_back(rec);
  }
  const auto efs = r.get<std::uint32_t>();
  for (std::uint32_t i = 0; i < efs; ++i) {
    const auto original = static_cast<int>(r.get<std::uint32_t>());
    const auto hash = r.get<std::uint64_t>();
    report.ef_hashes.emplace_back(original, hash);
  }
  return report;
}

/// Transport wrapper that kills the process after a configured number of
/// further sends — the only way to die deterministically *inside* a
/// chunked collective, with frames of the stream already on peers' wires.
class KillSwitchTransport final : public comm::ForwardingTransport {
 public:
  explicit KillSwitchTransport(comm::Transport& inner)
      : comm::ForwardingTransport(inner) {}

  /// The next `sends` sends go through; the one after _exit(9)s.
  void arm(int sends) { remaining_ = sends; }

  void send(int src, int dst, std::uint64_t tag,
            ByteBuffer payload) override {
    if (remaining_ >= 0 && remaining_-- == 0) _exit(9);
    comm::ForwardingTransport::send(src, dst, tag, std::move(payload));
  }

 private:
  int remaining_ = -1;
};

struct WorldResult {
  std::vector<net::ForkedWorkers::Outcome> outcomes;  ///< by rank
};

/// One rank's body: the SPMD loop every worker of the world runs.
inline RankReport run_rank(const WorldConfig& config, const FaultPlan& fault,
                           int rank, const std::string& rendezvous,
                           std::ofstream& log,
                           const std::string& trace_path = {}) {
  using Clock = std::chrono::steady_clock;
  const bool victim = fault.victim == rank;
  if (victim && fault.phase == KillPhase::kPreRendezvous) {
    log << "dying pre-rendezvous\n" << std::flush;
    _exit(9);
  }

  net::SocketFabricConfig fc;
  fc.rendezvous = rendezvous;
  fc.world_size = config.world;
  fc.rank = rank;
  fc.elastic = config.elastic;
  fc.recv_timeout_ms = config.peer_timeout_ms;
  fc.rejoin_window_ms = config.rejoin_window_ms;
  fc.io = config.io;
  net::SocketFabric fabric(fc);
  KillSwitchTransport transport(fabric);
  log << "meshed as rank " << fabric.rank() << " of "
      << fabric.world_size() << "\n"
      << std::flush;

  const ModelLayout layout({LayerSpec{"flat", config.dim, 1}});
  core::PipelineConfig pc;
  pc.chunk_bytes = config.chunk;
  pc.elastic = config.elastic;
  pc.peer_timeout_ms = config.peer_timeout_ms;
  pc.rejoin_window_ms = config.rejoin_window_ms;
  if (victim &&
      (fault.phase == KillPhase::kMidEncode ||
       fault.phase == KillPhase::kMidDecode)) {
    const char* at =
        fault.phase == KillPhase::kMidEncode ? "encode" : "decode";
    const auto die_round = static_cast<std::uint64_t>(fault.round);
    pc.fault_hook = [at, die_round, &log](const char* point,
                                          std::uint64_t round) {
      if (round == die_round && std::string(point) == at) {
        log << "dying at " << point << " of round " << round << "\n"
            << std::flush;
        _exit(9);
      }
    };
  }
  // Post-mortem tracing: when the harness logs, it also records per-round
  // spans and, on failure, dumps a Chrome trace next to the rank's log —
  // the artefact CI uploads so a kill-matrix failure can be read on a
  // timeline instead of out of four interleaved logs.
  measure::TraceRecorder recorder;
  std::vector<measure::RoundTrace> traces;
  if (!trace_path.empty()) pc.trace = &recorder;
  const auto dump_chrome_trace = [&](std::uint64_t round) {
    if (trace_path.empty()) return;
    traces.push_back(recorder.take(round, config.scheme, "socket"));
    std::ofstream chrome(trace_path, std::ios::trunc);
    chrome << telemetry::chrome_trace_json(traces, rank);
  };

  core::AggregationPipeline pipeline(
      core::make_scheme_codec(config.scheme, layout, config.world), pc);

  RankReport report;
  std::vector<float> out(config.dim);
  for (int r = 0; r < config.rounds; ++r) {
    const auto round = static_cast<std::uint64_t>(r);
    if (victim && fault.phase == KillPhase::kMidCollective &&
        r == fault.round) {
      transport.arm(3);  // die with a chunk stream already in flight
    }
    // Cache this round's gradients once per original rank on demand.
    auto all = core::seeded_worker_grads(config.dim, config.world,
                                         config.seed, round);
    const auto start = Clock::now();
    try {
      if (config.elastic) {
        pipeline.aggregate_elastic(
            transport,
            [&](int original) {
              return std::span<const float>(
                  all[static_cast<std::size_t>(original)]);
            },
            out, round);
      } else {
        std::vector<std::span<const float>> views;
        for (const auto& g : all) views.emplace_back(g.data(), g.size());
        comm::Communicator comm(transport, fabric.rank());
        pipeline.aggregate_over(
            comm, std::span<const std::span<const float>>(views), out,
            round);
      }
    } catch (const std::exception& e) {
      report.error = e.what();
      report.fail_elapsed_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              Clock::now() - start)
              .count());
      log << "round " << r << " failed after " << report.fail_elapsed_ms
          << " ms: " << e.what() << "\n"
          << std::flush;
      dump_chrome_trace(round);
      return report;
    }
    if (!trace_path.empty()) {
      traces.push_back(recorder.take(round, config.scheme, "socket"));
    }
    RoundRecord rec;
    rec.round = round;
    rec.out_hash = fnv64(out);
    if (config.elastic) {
      rec.epoch = pipeline.membership().epoch;
      rec.world = pipeline.membership().world_size();
    } else {
      rec.world = config.world;
    }
    report.rounds.push_back(rec);
    log << "round " << r << " committed (epoch " << rec.epoch << ", world "
        << rec.world << ", hash " << std::hex << rec.out_hash << std::dec
        << ")\n"
        << std::flush;
  }
  // Final EF fingerprints, keyed by original rank so the reference run
  // can line them up.
  const auto& membership = config.elastic
                               ? pipeline.membership()
                               : comm::Membership::identity(config.world);
  for (int w = 0; w < pipeline.codec().world_size(); ++w) {
    report.ef_hashes.emplace_back(
        membership.original_ranks[static_cast<std::size_t>(w)],
        fnv64(pipeline.codec().ef_memory(w)));
  }
  report.completed = true;
  return report;
}

/// Forks the whole world and runs the plan. The parent only collects.
inline WorldResult run_world(const WorldConfig& config,
                             const FaultPlan& fault) {
  const std::string rendezvous = net::unique_unix_rendezvous();
  if (!config.log_dir.empty()) {
    ::mkdir(config.log_dir.c_str(), 0755);
  }
  net::ForkedWorkers workers(0, config.world, [&](int rank) {
    std::ofstream log;
    std::string trace_path;
    if (!config.log_dir.empty()) {
      const std::string stem = config.log_dir + "/" + config.scheme + "." +
                               to_string(fault.phase) + ".victim" +
                               std::to_string(fault.victim) + ".rank" +
                               std::to_string(rank);
      log.open(stem + ".log");
      trace_path = stem + ".chrome.json";
    }
    return serialize_report(
        run_rank(config, fault, rank, rendezvous, log, trace_path));
  });
  WorldResult result;
  result.outcomes = workers.join_outcomes();
  return result;
}

/// The round index after which the cluster's committed prefix ends at
/// full world size: kills before the commit barrier abort the round
/// everywhere (it is retried on the shrunken world); a mid-decode kill
/// lands after the barrier, so that round commits at full world and the
/// recovery happens one round later.
inline int committed_full_world_rounds(const FaultPlan& fault) {
  switch (fault.phase) {
    case KillPhase::kPreRendezvous: return 0;
    case KillPhase::kMidEncode:
    case KillPhase::kMidCollective: return fault.round;
    case KillPhase::kMidDecode: return fault.round + 1;
  }
  return 0;
}

/// Ground truth for the acceptance criterion: a bit-exact local-backend
/// run — full world for the committed prefix, then remap_workers onto
/// the survivors (the "fresh (world-1) run seeded with the survivors'
/// carried-over EF state") for the rest.
inline RankReport reference_run(const WorldConfig& config,
                                const FaultPlan& fault) {
  const ModelLayout layout({LayerSpec{"flat", config.dim, 1}});
  core::PipelineConfig pc;
  pc.chunk_bytes = config.chunk;
  const int swap_after = committed_full_world_rounds(fault);

  RankReport report;
  std::vector<float> out(config.dim);
  core::AggregationPipeline full(
      core::make_scheme_codec(config.scheme, layout, config.world), pc);
  for (int r = 0; r < swap_after; ++r) {
    auto grads = core::seeded_worker_grads(config.dim, config.world,
                                           config.seed,
                                           static_cast<std::uint64_t>(r));
    std::vector<std::span<const float>> views;
    for (const auto& g : grads) views.emplace_back(g.data(), g.size());
    full.aggregate(std::span<const std::span<const float>>(views), out,
                   static_cast<std::uint64_t>(r));
    report.rounds.push_back(RoundRecord{static_cast<std::uint64_t>(r), 0,
                                        config.world, fnv64(out)});
  }

  std::vector<int> survivors;
  for (int w = 0; w < config.world; ++w) {
    if (w != fault.victim) survivors.push_back(w);
  }
  core::AggregationPipeline shrunk(
      full.codec().remap_workers(survivors), pc);
  const auto m = static_cast<int>(survivors.size());
  for (int r = swap_after; r < config.rounds; ++r) {
    auto grads = core::seeded_worker_grads(config.dim, config.world,
                                           config.seed,
                                           static_cast<std::uint64_t>(r));
    std::vector<std::span<const float>> views;
    for (const int original : survivors) {
      const auto& g = grads[static_cast<std::size_t>(original)];
      views.emplace_back(g.data(), g.size());
    }
    shrunk.aggregate(std::span<const std::span<const float>>(views), out,
                     static_cast<std::uint64_t>(r));
    report.rounds.push_back(RoundRecord{
        static_cast<std::uint64_t>(r),
        fault.phase == KillPhase::kPreRendezvous ? 0u : 1u, m,
        fnv64(out)});
  }
  for (int i = 0; i < m; ++i) {
    report.ef_hashes.emplace_back(survivors[static_cast<std::size_t>(i)],
                                  fnv64(shrunk.codec().ef_memory(i)));
  }
  report.completed = true;
  return report;
}

}  // namespace gcs::testing
