// Tests for numeric/precision: TF32/BF16 truncation and stochastic levels.
#include "numeric/precision.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace gcs {
namespace {

TEST(Precision, Names) {
  EXPECT_EQ(to_string(Precision::kFp32), "FP32");
  EXPECT_EQ(to_string(Precision::kTf32), "TF32");
  EXPECT_EQ(to_string(Precision::kFp16), "FP16");
  EXPECT_EQ(to_string(Precision::kBf16), "BF16");
}

TEST(Precision, WireBits) {
  EXPECT_EQ(wire_bits(Precision::kFp32), 32u);
  EXPECT_EQ(wire_bits(Precision::kFp16), 16u);
  EXPECT_EQ(wire_bits(Precision::kTf32), 19u);
}

TEST(Tf32, PreservesTenMantissaBits) {
  // 1 + 2^-10 is representable in TF32; 1 + 2^-11 is not and rounds.
  EXPECT_EQ(to_tf32(1.0f + std::ldexp(1.0f, -10)),
            1.0f + std::ldexp(1.0f, -10));
  const float t = to_tf32(1.0f + std::ldexp(1.0f, -11) * 1.5f);
  EXPECT_EQ(t, 1.0f + std::ldexp(1.0f, -10));
}

TEST(Tf32, KeepsFp32Range) {
  // TF32 keeps the full binary32 exponent: huge/tiny magnitudes survive
  // (only mantissa precision is lost, bounded by 2^-10 relatively).
  const float big = to_tf32(1e30f);
  EXPECT_TRUE(std::isfinite(big));
  EXPECT_NEAR(big / 1e30f, 1.0f, 1e-3f);
  EXPECT_GT(to_tf32(1e-30f), 0.0f);  // no underflow either
}

TEST(Bf16, SevenMantissaBits) {
  EXPECT_EQ(to_bf16(1.0f + std::ldexp(1.0f, -7)),
            1.0f + std::ldexp(1.0f, -7));
  EXPECT_EQ(to_bf16(1.0f + std::ldexp(1.0f, -9)), 1.0f);
}

TEST(Precision, RelativeErrorBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float v = static_cast<float>(rng.next_gaussian()) * 3.0f + 0.001f;
    EXPECT_LE(std::fabs(to_tf32(v) - v), std::fabs(v) * std::ldexp(1.0f, -10));
    EXPECT_LE(std::fabs(to_bf16(v) - v), std::fabs(v) * std::ldexp(1.0f, -7));
  }
}

TEST(Precision, Fp32IsIdentity) {
  EXPECT_EQ(round_to_precision(3.14159f, Precision::kFp32), 3.14159f);
}

TEST(Precision, SpanRounding) {
  std::vector<float> xs{1.0f + std::ldexp(1.0f, -9), 2.0f};
  round_span_to_precision(xs, Precision::kBf16);
  EXPECT_EQ(xs[0], 1.0f);
  EXPECT_EQ(xs[1], 2.0f);
}

TEST(StochasticLevel, BoundaryBehaviour) {
  EXPECT_EQ(stochastic_level(-1.0f, 0.0f, 1.0f, 4, 0.5f), 0u);
  EXPECT_EQ(stochastic_level(2.0f, 0.0f, 1.0f, 4, 0.5f), 15u);
  EXPECT_EQ(stochastic_level(0.0f, 0.0f, 1.0f, 4, 0.99f), 0u);
  EXPECT_EQ(stochastic_level(1.0f, 0.0f, 1.0f, 4, 0.0f), 15u);
}

TEST(StochasticLevel, DegenerateRange) {
  EXPECT_EQ(stochastic_level(5.0f, 5.0f, 5.0f, 4, 0.3f), 0u);
}

TEST(StochasticLevel, ExactGridPointsAreStable) {
  // A value exactly on a level never moves regardless of u.
  const unsigned q = 3;
  const float levels = 7.0f;
  for (unsigned l = 0; l <= 7; ++l) {
    const float v = static_cast<float>(l) / levels;
    EXPECT_EQ(stochastic_level(v, 0.0f, 1.0f, q, 0.0f), l);
    EXPECT_EQ(stochastic_level(v, 0.0f, 1.0f, q, 0.999f), l);
  }
}

// Property: stochastic rounding is unbiased — E[level * delta + lo] == x.
class StochasticUnbiasedTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StochasticUnbiasedTest, MeanMatchesValue) {
  const unsigned q = GetParam();
  Rng rng(100 + q);
  const float lo = -2.0f, hi = 3.0f;
  const float delta = (hi - lo) / static_cast<float>((1u << q) - 1u);
  for (float x : {-1.3f, 0.0f, 0.77f, 2.9f}) {
    double sum = 0.0;
    const int trials = 40000;
    for (int t = 0; t < trials; ++t) {
      const auto level = stochastic_level(x, lo, hi, q, rng.next_float());
      sum += lo + static_cast<double>(level) * delta;
    }
    EXPECT_NEAR(sum / trials, x, 3.0 * delta / std::sqrt(trials) + 1e-3)
        << "q=" << q << " x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQ, StochasticUnbiasedTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace gcs
