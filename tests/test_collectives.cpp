// Tests for comm/collectives: correctness of every collective on the real
// threaded fabric, measured wire volumes, and bit-identity of the local
// reference aggregators (including non-associative ops).
#include "comm/collectives.h"

#include <gtest/gtest.h>

#include <cstring>

#include "comm/fabric.h"
#include "comm/group.h"
#include "common/rng.h"
#include "numeric/half.h"

namespace gcs::comm {
namespace {

ByteBuffer float_payload(const std::vector<float>& xs) {
  ByteBuffer buf(xs.size() * sizeof(float));
  std::memcpy(buf.data(), xs.data(), buf.size());
  return buf;
}

std::vector<float> floats_of(const ByteBuffer& buf) {
  std::vector<float> out(buf.size() / sizeof(float));
  std::memcpy(out.data(), buf.data(), buf.size());
  return out;
}

std::vector<ByteBuffer> random_float_inputs(int n, std::size_t count,
                                            std::uint64_t seed) {
  std::vector<ByteBuffer> inputs;
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    std::vector<float> xs(count);
    for (auto& x : xs) x = static_cast<float>(rng.next_gaussian());
    inputs.push_back(float_payload(xs));
  }
  return inputs;
}

std::vector<float> exact_sum(const std::vector<ByteBuffer>& inputs) {
  auto acc = floats_of(inputs[0]);
  for (std::size_t w = 1; w < inputs.size(); ++w) {
    const auto xs = floats_of(inputs[w]);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += xs[i];
  }
  return acc;
}

// Runs a collective on the threaded fabric; returns every rank's final
// buffer.
template <typename Body>
std::vector<ByteBuffer> run_collective(const std::vector<ByteBuffer>& inputs,
                                       Body body) {
  const auto n = static_cast<int>(inputs.size());
  Fabric fabric(n);
  std::vector<ByteBuffer> results(inputs.begin(), inputs.end());
  run_workers(fabric, [&](Communicator& comm) {
    body(comm, results[static_cast<std::size_t>(comm.rank())]);
  });
  return results;
}

class RingAllReduceTest : public ::testing::TestWithParam<int> {};

TEST_P(RingAllReduceTest, SumsFloatsAcrossRanks) {
  const int n = GetParam();
  const auto inputs = random_float_inputs(n, 103, 42);
  const auto expected = exact_sum(inputs);
  const auto op = make_fp32_sum();
  const auto results = run_collective(
      inputs,
      [&](Communicator& comm, ByteBuffer& data) {
        ring_all_reduce(comm, data, *op);
      });
  for (const auto& result : results) {
    const auto got = floats_of(result);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expected[i], 1e-4f);
    }
  }
}

TEST_P(RingAllReduceTest, AllRanksAgreeBitForBit) {
  const int n = GetParam();
  const auto inputs = random_float_inputs(n, 64, 7);
  const auto op = make_fp32_sum();
  const auto results = run_collective(
      inputs,
      [&](Communicator& comm, ByteBuffer& data) {
        ring_all_reduce(comm, data, *op);
      });
  for (const auto& result : results) EXPECT_EQ(result, results[0]);
}

TEST_P(RingAllReduceTest, LocalReferenceIsBitIdentical) {
  const int n = GetParam();
  const auto inputs = random_float_inputs(n, 97, 19);
  const auto op = make_fp32_sum();
  const auto reference = local_ring_all_reduce(inputs, *op);
  const auto results = run_collective(
      inputs,
      [&](Communicator& comm, ByteBuffer& data) {
        ring_all_reduce(comm, data, *op);
      });
  EXPECT_EQ(results[0], reference);
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, RingAllReduceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST(RingAllReduce, Fp16LocalReferenceBitIdentical) {
  // FP16 summation is order-sensitive; the reference must replicate the
  // ring's fold order exactly.
  const int n = 4;
  std::vector<ByteBuffer> inputs;
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(3, w));
    ByteBuffer buf;
    ByteWriter writer(buf);
    for (int i = 0; i < 50; ++i) {
      writer.put<std::uint16_t>(float_to_half_bits(
          static_cast<float>(rng.next_gaussian()) * 100.0f));
    }
    inputs.push_back(std::move(buf));
  }
  const auto op = make_fp16_sum();
  const auto reference = local_ring_all_reduce(inputs, *op);
  const auto results = run_collective(
      inputs,
      [&](Communicator& comm, ByteBuffer& data) {
        ring_all_reduce(comm, data, *op);
      });
  for (const auto& r : results) EXPECT_EQ(r, reference);
}

TEST(RingAllReduce, SatIntLocalReferenceBitIdentical) {
  // Saturating add is NOT associative: this test pins the canonical order.
  const int n = 5;
  std::vector<ByteBuffer> inputs;
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(11, w));
    std::vector<std::int32_t> lanes(40);
    for (auto& l : lanes) {
      l = static_cast<std::int32_t>(rng.next_below(15)) - 7;
    }
    inputs.push_back(pack_signed_lanes(lanes, 4));
  }
  const auto op = make_sat_int(4, nullptr);
  const auto reference = local_ring_all_reduce(inputs, *op);
  const auto results = run_collective(
      inputs,
      [&](Communicator& comm, ByteBuffer& data) {
        ring_all_reduce(comm, data, *op);
      });
  for (const auto& r : results) EXPECT_EQ(r, reference);
}

TEST(RingAllReduce, WireVolumeMatchesTheory) {
  // Ring all-reduce sends 2(n-1)/n x payload per worker.
  const int n = 4;
  const std::size_t payload = 400;  // bytes, divisible by n*granularity
  auto inputs = random_float_inputs(n, payload / 4, 23);
  Fabric fabric(n);
  std::vector<ByteBuffer> bufs(inputs.begin(), inputs.end());
  const auto op = make_fp32_sum();
  run_workers(fabric, [&](Communicator& comm) {
    ring_all_reduce(comm, bufs[static_cast<std::size_t>(comm.rank())], *op);
  });
  const auto expected_per_worker =
      payload * 2 * (n - 1) / static_cast<std::size_t>(n);
  for (int w = 0; w < n; ++w) {
    EXPECT_EQ(fabric.bytes_sent(w), expected_per_worker);
  }
}

TEST(TreeAllReduce, MatchesExactSumAndReference) {
  for (int n : {1, 2, 3, 4, 7, 8}) {
    const auto inputs = random_float_inputs(n, 51, 100 + n);
    const auto expected = exact_sum(inputs);
    const auto op = make_fp32_sum();
    const auto reference = local_tree_all_reduce(inputs, *op);
    const auto results = run_collective(
        inputs,
        [&](Communicator& comm, ByteBuffer& data) {
          tree_all_reduce(comm, data, *op);
        });
    for (const auto& result : results) {
      EXPECT_EQ(result, reference) << "n=" << n;
      const auto got = floats_of(result);
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], expected[i], 1e-4f);
      }
    }
  }
}

TEST(AllGather, EveryRankSeesEveryPayload) {
  const int n = 4;
  Fabric fabric(n);
  std::vector<std::vector<ByteBuffer>> gathered(n);
  run_workers(fabric, [&](Communicator& comm) {
    ByteBuffer mine(static_cast<std::size_t>(comm.rank() + 1),
                    static_cast<std::byte>(comm.rank()));
    gathered[static_cast<std::size_t>(comm.rank())] =
        all_gather(comm, std::move(mine));
  });
  for (int w = 0; w < n; ++w) {
    ASSERT_EQ(gathered[w].size(), static_cast<std::size_t>(n));
    for (int src = 0; src < n; ++src) {
      EXPECT_EQ(gathered[w][src].size(), static_cast<std::size_t>(src + 1));
      EXPECT_EQ(gathered[w][src][0], static_cast<std::byte>(src));
    }
  }
}

TEST(AllGather, WireVolumeIsNMinusOneTimesPayload) {
  const int n = 4;
  const std::size_t payload = 100;
  Fabric fabric(n);
  run_workers(fabric, [&](Communicator& comm) {
    (void)all_gather(comm, ByteBuffer(payload));
  });
  for (int w = 0; w < n; ++w) {
    EXPECT_EQ(fabric.bytes_sent(w), payload * (n - 1));
  }
}

TEST(Broadcast, AllRootsWork) {
  const int n = 5;
  for (int root = 0; root < n; ++root) {
    Fabric fabric(n);
    std::vector<ByteBuffer> bufs(n);
    run_workers(fabric, [&](Communicator& comm) {
      ByteBuffer data;
      if (comm.rank() == root) data = ByteBuffer(7, std::byte{0x5A});
      broadcast(comm, data, root);
      bufs[static_cast<std::size_t>(comm.rank())] = std::move(data);
    });
    for (const auto& buf : bufs) {
      EXPECT_EQ(buf, ByteBuffer(7, std::byte{0x5A})) << "root=" << root;
    }
  }
}

TEST(PsAggregate, MatchesReferenceAndSum) {
  const int n = 4;
  const auto inputs = random_float_inputs(n, 33, 55);
  const auto expected = exact_sum(inputs);
  const auto op = make_fp32_sum();
  const auto reference = local_ps_aggregate(inputs, *op, 0);
  const auto results = run_collective(
      inputs,
      [&](Communicator& comm, ByteBuffer& data) {
        ps_aggregate(comm, data, *op, 0);
      });
  for (const auto& result : results) {
    EXPECT_EQ(result, reference);
  }
  const auto got = floats_of(results[1]);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], expected[i], 1e-4f);
  }
}

TEST(PsAggregate, ServerLinkCarriesAlmostAllTraffic) {
  const int n = 4;
  const std::size_t payload = 120;
  auto inputs = random_float_inputs(n, payload / 4, 66);
  Fabric fabric(n);
  std::vector<ByteBuffer> bufs(inputs.begin(), inputs.end());
  const auto op = make_fp32_sum();
  run_workers(fabric, [&](Communicator& comm) {
    ps_aggregate(comm, bufs[static_cast<std::size_t>(comm.rank())], *op, 0);
  });
  // Server broadcasts (n-1) copies; clients send one payload each —
  // the many-to-one / one-to-many pattern the paper criticises.
  EXPECT_EQ(fabric.bytes_sent(0), payload * (n - 1));
  for (int w = 1; w < n; ++w) EXPECT_EQ(fabric.bytes_sent(w), payload);
}

TEST(RingBlockOffsets, AlignedAndComplete) {
  const auto off = ring_block_offsets(100, 4, 4);
  ASSERT_EQ(off.size(), 5u);
  EXPECT_EQ(off.front(), 0u);
  EXPECT_EQ(off.back(), 100u);
  for (std::size_t i = 0; i + 1 < off.size(); ++i) {
    EXPECT_EQ(off[i] % 4, 0u);
    EXPECT_LE(off[i], off[i + 1]);
  }
}

TEST(RingBlockOffsets, UnevenSplitDistributesRemainder) {
  const auto off = ring_block_offsets(28, 3, 4);  // 7 floats over 3 ranks
  EXPECT_EQ(off[1] - off[0], 12u);  // 3 floats
  EXPECT_EQ(off[2] - off[1], 8u);   // 2 floats
  EXPECT_EQ(off[3] - off[2], 8u);   // 2 floats
}

TEST(RingBlockOffsets, MisalignedSizeThrows) {
  EXPECT_THROW(ring_block_offsets(10, 2, 4), std::logic_error);
}

TEST(RunWorkers, PropagatesExceptions) {
  Fabric fabric(2);
  EXPECT_THROW(run_workers(fabric,
                           [](Communicator& comm) {
                             if (comm.rank() == 1) {
                               throw Error("worker failure");
                             }
                           }),
               Error);
}

TEST(RingAllReduce, EmptyPayloadIsFine) {
  const auto op = make_fp32_sum();
  std::vector<ByteBuffer> inputs(3);
  const auto reference = local_ring_all_reduce(inputs, *op);
  EXPECT_TRUE(reference.empty());
}

}  // namespace
}  // namespace gcs::comm
