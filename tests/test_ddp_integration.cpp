// End-to-end integration tests: the full DDP training simulator with real
// compressed aggregation in the loop, on both proxy tasks.
#include <gtest/gtest.h>

#include "sim/ddp_trainer.h"
#include "sim/tta.h"
#include "sim/workload.h"

namespace gcs::sim {
namespace {

train::GaussianMixtureDataset small_classifier_data() {
  train::GaussianMixtureDataset::Config config;
  config.features = 32;
  config.classes = 8;
  config.separation = 2.5;
  config.eval_samples = 512;
  return train::GaussianMixtureDataset(config);
}

train::MarkovLmDataset small_lm_data() {
  train::MarkovLmDataset::Config config;
  config.vocab = 32;
  config.eval_samples = 512;
  return train::MarkovLmDataset(config);
}

DdpConfig base_config(const std::string& scheme) {
  DdpConfig config;
  config.scheme = scheme;
  config.world_size = 4;
  config.batch_per_worker = 16;
  config.hidden = {32};
  config.learning_rate = 0.3;
  config.max_rounds = 400;
  config.eval_every = 20;
  config.rolling_window = 3;
  config.patience = 8;
  config.min_delta = 1e-3;
  config.post_converge_rounds = 40;
  return config;
}

TEST(DdpIntegration, Fp32BaselineLearnsClassifier) {
  const auto data = small_classifier_data();
  auto config = base_config("fp32");
  const auto result =
      train_ddp(data, config, make_vgg19_workload(), CostModel());
  ASSERT_FALSE(result.curve.empty());
  EXPECT_GT(result.final_metric, 0.6);  // well above 1/8 chance
  EXPECT_GT(result.rounds_run, 50);
  EXPECT_GT(result.simulated_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_bits_per_coordinate, 32.0);
}

TEST(DdpIntegration, Fp16MatchesFp32Accuracy) {
  // The paper's premise: FP16 communication degrades accuracy negligibly.
  const auto data = small_classifier_data();
  const auto r32 = train_ddp(data, base_config("fp32"),
                             make_vgg19_workload(), CostModel());
  const auto r16 = train_ddp(data, base_config("fp16"),
                             make_vgg19_workload(), CostModel());
  EXPECT_NEAR(r16.final_metric, r32.final_metric, 0.05);
  // ...while being meaningfully faster per round.
  EXPECT_GT(r16.rounds_per_second, r32.rounds_per_second * 1.2);
}

TEST(DdpIntegration, LmTaskPerplexityDrops) {
  const auto data = small_lm_data();
  auto config = base_config("fp16");
  config.direction = train::MetricDirection::kLowerIsBetter;
  config.learning_rate = 0.3;
  config.max_rounds = 1000;
  config.hidden = {64};
  const auto result =
      train_ddp(data, config, make_bert_large_workload(), CostModel());
  ASSERT_GE(result.curve.size(), 2u);
  // Perplexity must drop well below the uniform bound (vocab = 32).
  EXPECT_LT(result.final_metric, 20.0);
  EXPECT_LT(result.curve.back().metric, result.curve.front().metric);
}

TEST(DdpIntegration, TopKCTrainsClassifier) {
  const auto data = small_classifier_data();
  auto config = base_config("topkc:b=2");
  // b = 2 transmits ~10% of coordinates per round; error feedback makes
  // it converge, but it needs more rounds than the dense baselines. The
  // wider hidden layer keeps the chunk count meaningful at this tiny d.
  config.hidden = {64};
  config.max_rounds = 3000;
  config.patience = 40;
  const auto result =
      train_ddp(data, config, make_vgg19_workload(), CostModel());
  EXPECT_GT(result.final_metric, 0.5);
  EXPECT_NEAR(result.mean_bits_per_coordinate, 2.0, 0.5);
  EXPECT_EQ(result.scheme, "TopKC");
}

TEST(DdpIntegration, ThcTrainsClassifier) {
  const auto data = small_classifier_data();
  auto config = base_config("thc:q=4:b=4:sat:partial");
  const auto result =
      train_ddp(data, config, make_vgg19_workload(), CostModel());
  EXPECT_GT(result.final_metric, 0.5);
}

TEST(DdpIntegration, PowerSgdTrainsClassifier) {
  const auto data = small_classifier_data();
  auto config = base_config("powersgd:r=4");
  const auto result =
      train_ddp(data, config, make_vgg19_workload(), CostModel());
  EXPECT_GT(result.final_metric, 0.5);
  EXPECT_LT(result.mean_bits_per_coordinate, 16.0);
}

TEST(DdpIntegration, TopKTrainsButUsesAllGather) {
  const auto data = small_classifier_data();
  auto config = base_config("topk:b=8");
  const auto result =
      train_ddp(data, config, make_vgg19_workload(), CostModel());
  EXPECT_GT(result.final_metric, 0.5);
}

TEST(DdpIntegration, AggressiveCompressionHurtsAccuracyOrSpeed) {
  // The paper's central evaluation point: cutting b improves throughput
  // but can degrade the metric at equal rounds. Check the throughput side
  // deterministically and the accuracy side directionally.
  const auto data = small_classifier_data();
  auto c8 = base_config("topkc:b=8");
  auto c05 = base_config("topkc:b=0.5");
  c8.max_rounds = c05.max_rounds = 200;
  c8.patience = c05.patience = 1000;  // disable early stop: equal rounds
  const auto r8 = train_ddp(data, c8, make_vgg19_workload(), CostModel());
  const auto r05 = train_ddp(data, c05, make_vgg19_workload(), CostModel());
  EXPECT_GT(r05.rounds_per_second, r8.rounds_per_second);
  EXPECT_GE(r8.final_metric, r05.final_metric - 0.02);
  // With EF the per-round estimate also carries old residuals, so vNMSE
  // against the current round's sum can exceed 1; only the ordering and a
  // sanity ceiling are asserted.
  EXPECT_LE(r05.mean_vnmse, 8.0);
  EXPECT_GT(r05.mean_vnmse, r8.mean_vnmse);
}

TEST(DdpIntegration, DeterministicGivenSeed) {
  const auto data = small_classifier_data();
  auto config = base_config("topkc:b=2");
  config.max_rounds = 60;
  const auto a = train_ddp(data, config, make_vgg19_workload(), CostModel());
  const auto b = train_ddp(data, config, make_vgg19_workload(), CostModel());
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].metric, b.curve[i].metric);
  }
}

TEST(DdpIntegration, EarlyStoppingTerminatesBeforeMaxRounds) {
  const auto data = small_classifier_data();
  auto config = base_config("fp16");
  config.max_rounds = 2000;
  config.patience = 4;
  config.post_converge_rounds = 20;
  const auto result =
      train_ddp(data, config, make_vgg19_workload(), CostModel());
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.rounds_run, 2000);
}

TEST(DdpIntegration, SimulatedClockMatchesRoundsTimesRoundTime) {
  const auto data = small_classifier_data();
  auto config = base_config("fp32");
  config.max_rounds = 50;
  config.patience = 1000;
  const CostModel cost;
  const auto w = make_vgg19_workload();
  const auto result = train_ddp(data, config, w, cost);
  const double expected =
      result.rounds_run * cost.round_for_spec(w, "fp32").total();
  EXPECT_NEAR(result.simulated_seconds, expected, expected * 1e-9);
}

}  // namespace
}  // namespace gcs::sim
