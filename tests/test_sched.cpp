// Tests for the sched/ subsystem: layer-aligned bucket planning, the
// backward gradient-ready event source (including the legality proof that
// a bucket never needs a layer that is still pending at its ready time),
// the encode worker pool's determinism, the backward-overlap cost charge
// and the bucket/chunk autotuner.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/check.h"
#include "sched/autotune.h"
#include "sched/backward_source.h"
#include "sched/bucket_planner.h"
#include "sched/encode_worker_pool.h"
#include "sim/cost_model.h"
#include "sim/workload.h"
#include "tensor/layout.h"

namespace gcs::sched {
namespace {

TEST(BucketPlanner, BackwardOrderAndFullCoverage) {
  const auto layout = sim::bert_large_layout();
  const BucketPlan plan = plan_buckets(layout);
  ASSERT_GT(plan.num_buckets(), 1u);
  std::size_t covered = 0;
  for (std::size_t k = 0; k < plan.num_buckets(); ++k) {
    const Bucket& b = plan.bucket(k);
    covered += b.grad_elems;
    // Contiguity: a bucket is a run of whole layers.
    std::size_t elems = 0;
    for (std::size_t l = b.first_layer; l < b.first_layer + b.layer_count;
         ++l) {
      elems += layout.layer(l).size();
    }
    EXPECT_EQ(elems, b.grad_elems);
    EXPECT_EQ(layout.offset(b.first_layer), b.grad_offset);
    if (k > 0) {
      // Backward order: bucket k sits immediately *before* bucket k-1 in
      // the flat tensor (backprop walks the model back to front).
      EXPECT_EQ(b.grad_end(), plan.bucket(k - 1).grad_offset);
    } else {
      EXPECT_EQ(b.grad_end(), layout.total_size());
    }
  }
  EXPECT_EQ(covered, layout.total_size());
}

TEST(BucketPlanner, FirstBucketIsSmall) {
  // DDP's first-bucket special case: the first (earliest-ready) bucket is
  // capped well below the steady-state cap so the wire starts early.
  const auto layout = sim::bert_large_layout();
  const BucketPlan plan = plan_buckets(layout);
  const Bucket& first = plan.bucket(0);
  const Bucket& steady = plan.bucket(plan.num_buckets() / 2);
  EXPECT_LT(first.grad_elems * 4,
            BucketPlannerConfig::kDefaultBucketBytes / 2);
  EXPECT_GT(steady.grad_elems, first.grad_elems);
}

TEST(BucketPlanner, RuntTailFoldsIntoPredecessor) {
  // A model whose leading layer is a sliver must not produce a runt final
  // bucket (it would pay a whole collective latency for almost nothing).
  const ModelLayout layout({LayerSpec{"tiny", 8, 1},
                            LayerSpec{"big0", 1024, 1024},
                            LayerSpec{"big1", 1024, 1024}});
  BucketPlannerConfig config;
  config.bucket_bytes = 1024 * 1024 * 4;  // one layer per bucket
  config.first_bucket_bytes = 1024 * 1024 * 4;
  const BucketPlan plan = plan_buckets(layout, config);
  ASSERT_EQ(plan.num_buckets(), 2u);
  // The tiny first layer rides with "big0" in the last-ready bucket.
  EXPECT_EQ(plan.bucket(1).first_layer, 0u);
  EXPECT_EQ(plan.bucket(1).layer_count, 2u);
}

TEST(BucketPlanner, OversizedLayerFormsItsOwnBucket) {
  const ModelLayout layout({LayerSpec{"huge", 4096, 4096},
                            LayerSpec{"small", 64, 64}});
  BucketPlannerConfig config;
  config.bucket_bytes = 1024;  // far below either layer
  config.first_bucket_bytes = 1024;
  const BucketPlan plan = plan_buckets(layout, config);
  ASSERT_EQ(plan.num_buckets(), 2u);
  EXPECT_EQ(plan.bucket(0).layer_count, 1u);  // "small" (ready first)
  EXPECT_EQ(plan.bucket(1).layer_count, 1u);  // "huge", unsplit
  EXPECT_EQ(plan.bucket(1).grad_elems, std::size_t{4096} * 4096);
}

TEST(BucketPlanner, SingleLayerLayoutDegeneratesToOneBucket) {
  const ModelLayout layout({LayerSpec{"flat", 1 << 20, 1}});
  const BucketPlan plan = plan_buckets(layout);
  EXPECT_EQ(plan.num_buckets(), 1u);
  EXPECT_EQ(plan.bucket(0).grad_elems, layout.total_size());
}

TEST(BucketPlanner, ChunkPlanTilesPayloadAtAnyGranularity) {
  const auto layout = sim::vgg19_layout();
  const BucketPlan plan = plan_buckets(layout);
  for (std::size_t payload : {std::size_t{layout.total_size()} * 2,
                              std::size_t{layout.total_size()} / 2 / 8 * 8,
                              std::size_t{4096}, std::size_t{8}}) {
    for (std::size_t granularity : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
      if (payload % granularity != 0) continue;
      const auto chunks = plan.chunk_plan(payload, granularity);
      // check_chunk_plan ran inside; re-verify the invariants here.
      std::size_t pos = 0;
      for (const auto& c : chunks) {
        EXPECT_EQ(c.offset, pos);
        EXPECT_EQ(c.offset % granularity, 0u);
        pos = c.end();
      }
      EXPECT_EQ(pos, payload);
      EXPECT_LE(chunks.size(), plan.num_buckets());
    }
  }
}

TEST(BucketPlanner, ChunkPlanIsProportionalToBuckets) {
  // On an uncompressed payload (2 bytes per coordinate), every bucket
  // boundary maps exactly to a chunk boundary.
  const ModelLayout layout({LayerSpec{"a", 1000, 1},
                            LayerSpec{"b", 3000, 1},
                            LayerSpec{"c", 2000, 1}});
  BucketPlannerConfig config;
  config.bucket_bytes = 3000 * 4;
  config.first_bucket_bytes = 2000 * 4;
  const BucketPlan plan = plan_buckets(layout, config);
  ASSERT_EQ(plan.num_buckets(), 3u);
  const auto chunks = plan.chunk_plan(6000 * 2, 2);
  ASSERT_EQ(chunks.size(), 3u);
  // Ascending chunk j covers bucket num_buckets-1-j.
  EXPECT_EQ(chunks[0].size, 1000u * 2);  // layer "a" (last ready)
  EXPECT_EQ(chunks[1].size, 3000u * 2);  // layer "b"
  EXPECT_EQ(chunks[2].size, 2000u * 2);  // layer "c" (first ready)
  EXPECT_EQ(plan.bucket_of_chunk(chunks[0], 6000 * 2), 2u);
  EXPECT_EQ(plan.bucket_of_chunk(chunks[1], 6000 * 2), 1u);
  EXPECT_EQ(plan.bucket_of_chunk(chunks[2], 6000 * 2), 0u);
}

TEST(BucketPlanner, MergedChunkGatesOnItsLatestReadyBucket) {
  // Tiny payloads collapse bucket boundaries under granularity
  // alignment; the merged chunk must map to the LATEST-ready bucket it
  // contains, or a scheduler would start it before those layers'
  // gradients exist.
  const ModelLayout layout({LayerSpec{"a", 2, 1}, LayerSpec{"b", 2, 1},
                            LayerSpec{"c", 2, 1}});
  BucketPlannerConfig config;
  config.bucket_bytes = 8;
  config.first_bucket_bytes = 8;
  const BucketPlan plan = plan_buckets(layout, config);
  ASSERT_EQ(plan.num_buckets(), 3u);
  // payload 8, granularity 4: the bucket-2 boundary (8*2/6 = 2.67 -> 0)
  // collapses; chunk [0,4) holds coordinates of buckets 2 AND 1.
  const auto chunks = plan.chunk_plan(8, 4);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(plan.bucket_of_chunk(chunks[0], 8), 2u);  // latest ready wins
  // Chunk [4,8) still overlaps the tail of bucket 1's proportional range
  // (5.33 > 4), so it too gates on bucket 1, not bucket 0.
  EXPECT_EQ(plan.bucket_of_chunk(chunks[1], 8), 1u);
  // A fully-aligned payload keeps the 1:1 mapping.
  const auto exact = plan.chunk_plan(12, 2);
  ASSERT_EQ(exact.size(), 3u);
  EXPECT_EQ(plan.bucket_of_chunk(exact[0], 12), 2u);
  EXPECT_EQ(plan.bucket_of_chunk(exact[1], 12), 1u);
  EXPECT_EQ(plan.bucket_of_chunk(exact[2], 12), 0u);
}

TEST(BackwardSource, EventsReplayInReverseLayerOrder) {
  const auto layout = sim::bert_large_layout();
  const BackwardSource source(layout, 0.1);
  const auto& events = source.events();
  ASSERT_EQ(events.size(), layout.num_layers());
  EXPECT_EQ(events.front().layer, layout.num_layers() - 1);
  EXPECT_EQ(events.back().layer, 0u);
  double prev = 0.0;
  for (const auto& e : events) {
    EXPECT_GT(e.time_s, prev);  // strictly increasing (no empty layers)
    prev = e.time_s;
  }
  EXPECT_NEAR(prev, 0.1, 1e-12);  // the full pass sums to backward time
}

TEST(BackwardSource, BucketReadyWhenItsLastLayerIs) {
  // The legality proof: every layer of bucket k is ready by
  // bucket_ready_s(k), so encoding bucket k at that time never touches a
  // gradient that does not exist yet — and earlier-ready buckets gate
  // strictly before later ones.
  const auto layout = sim::bert_large_layout();
  const BackwardSource source(layout, 1.0);
  const BucketPlan plan = plan_buckets(layout);
  double prev = 0.0;
  for (std::size_t k = 0; k < plan.num_buckets(); ++k) {
    const Bucket& b = plan.bucket(k);
    const double ready = source.bucket_ready_s(b);
    for (std::size_t l = b.first_layer; l < b.first_layer + b.layer_count;
         ++l) {
      EXPECT_LE(source.layer_ready_s(l), ready) << "bucket " << k;
    }
    EXPECT_GE(ready, prev) << "bucket " << k;
    prev = ready;
  }
  EXPECT_NEAR(prev, 1.0, 1e-9);  // the last bucket waits for layer 0
}

TEST(EncodeWorkerPool, TasksLandInTheirSlots) {
  // Determinism rule: the pool decides when, never what — every slot gets
  // the value its task computes, independent of claim order.
  EncodeWorkerPool pool(4);
  for (int repeat = 0; repeat < 20; ++repeat) {
    std::vector<int> slots(64, -1);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&slots, i] { slots[static_cast<std::size_t>(i)] = i * i; });
    }
    pool.wait_idle();
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(slots[static_cast<std::size_t>(i)], i * i);
    }
  }
}

TEST(EncodeWorkerPool, WaitIdleRethrowsTaskError) {
  EncodeWorkerPool pool(2);
  std::atomic<int> done{0};
  pool.submit([] { throw Error("boom"); });
  pool.submit([&done] { ++done; });
  EXPECT_THROW(pool.wait_idle(), Error);
  // The pool survives an error: subsequent batches run normally.
  pool.submit([&done] { ++done; });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 2);
}

TEST(EncodeWorkerPool, RejectsZeroWorkers) {
  EXPECT_THROW(EncodeWorkerPool(0), Error);
}

TEST(BackwardOverlapCost, Fp16HidesCommUnderBackward) {
  // The headline: the dense baseline, which gains nothing from
  // compress<->comm chunking (no compression compute), gains a lot from
  // backward<->comm bucketing — DDP's entire design point.
  const sim::CostModel cost;
  const auto w = sim::make_bert_large_workload();
  const auto mono = cost.round_for_spec(w, "fp16");
  const auto bucketed = cost.bucketed_round_for_spec(w, "fp16", 0, 2);
  EXPECT_GT(bucketed.chunks, 1u);
  EXPECT_GT(bucketed.overlap_saved_s, 0.01);  // tens of ms at BERT scale
  EXPECT_LT(bucketed.total(), mono.total());
}

TEST(BackwardOverlapCost, SavingNeverExceedsHideableTime) {
  const sim::CostModel cost;
  const auto w = sim::make_bert_large_workload();
  for (const char* spec : {"fp16", "topk:b=8", "topkc:b=8",
                           "thc:q=4:b=4:sat:partial", "powersgd:r=4"}) {
    for (int workers : {1, 2, 4}) {
      const auto t = cost.bucketed_round_for_spec(w, spec, 0, workers);
      // The bucketed schedule can hide comm and streamable encode under
      // the backward pass, but never more than the serial schedule spends
      // outside the critical path's irreducible parts.
      EXPECT_GE(t.overlap_saved_s, 0.0) << spec;
      EXPECT_LT(t.overlap_saved_s, t.compute_s + t.compress_s + t.comm_s)
          << spec;
      EXPECT_GT(t.total(), 0.0) << spec;
    }
  }
}

TEST(BackwardOverlapCost, SelectionBarrierLimitsTopK) {
  // The paper's warning, quantified: TopK's whole-vector selection gates
  // every bucket, so its backward-overlap saving stays near the
  // compress<->comm saving, while the barrier-free fp16 baseline hides a
  // large slice of its comm. Relative to its own comm volume, fp16 must
  // gain strictly more.
  const sim::CostModel cost;
  const auto w = sim::make_bert_large_workload();
  const auto fp16 = cost.bucketed_round_for_spec(w, "fp16", 0, 2);
  const auto topk = cost.bucketed_round_for_spec(w, "topk:b=8", 0, 2);
  EXPECT_GT(fp16.overlap_saved_s / fp16.comm_s,
            topk.overlap_saved_s / topk.comm_s);
}

TEST(BackwardOverlapCost, SpecGrammarSelectsBucketedCharge) {
  const sim::CostModel cost;
  const auto w = sim::make_bert_large_workload();
  const auto by_api = cost.bucketed_round_for_spec(w, "topkc:b=8", 0, 2);
  const auto by_spec =
      cost.round_for_spec(w, "topkc:b=8:buckets=layer:workers=2");
  EXPECT_DOUBLE_EQ(by_api.total(), by_spec.total());
  EXPECT_EQ(by_api.chunks, by_spec.chunks);
  const auto sized = cost.round_for_spec(
      w, "topkc:b=8:buckets=layer:workers=2:bucket=8388608");
  EXPECT_GT(sized.chunks, by_spec.chunks);  // smaller cap, more buckets
}

TEST(BackwardOverlapCost, BackwardFracKnobShiftsTheHideableWindow) {
  // A larger backward share means a longer window to hide comm under;
  // the fp16 baseline (pure comm hiding) must save monotonically more.
  // The spec knob and the API argument must agree, and the default must
  // stay the 2/3 rule.
  const sim::CostModel cost;
  const auto w = sim::make_bert_large_workload();
  const auto low = cost.bucketed_round_for_spec(w, "fp16", 0, 2, 0.34);
  const auto mid = cost.bucketed_round_for_spec(w, "fp16", 0, 2);
  const auto high = cost.bucketed_round_for_spec(w, "fp16", 0, 2, 0.9);
  EXPECT_LT(low.overlap_saved_s, mid.overlap_saved_s);
  EXPECT_LT(mid.overlap_saved_s, high.overlap_saved_s);
  const auto by_spec = cost.round_for_spec(
      w, "fp16:buckets=layer:workers=2:backward_frac=0.9");
  EXPECT_DOUBLE_EQ(by_spec.total(), high.total());
  const auto by_default =
      cost.round_for_spec(w, "fp16:buckets=layer:workers=2");
  EXPECT_DOUBLE_EQ(by_default.total(), mid.total());
}

TEST(Autotune, PicksArgminAndRecordsSweep) {
  const sim::CostModel cost;
  const auto w = sim::make_bert_large_workload();
  const AutotuneChoice choice =
      autotune_sizes(cost, w, "thc:q=4:b=4:sat:partial", 2);
  EXPECT_EQ(choice.sweep.size(),
            autotune_chunk_grid().size() + autotune_bucket_grid().size());
  // The chosen sizes really are the grid minima.
  for (const auto& point : choice.sweep) {
    if (point.bucketed) {
      EXPECT_GE(point.total_s, choice.bucketed_total_s - 1e-12);
    } else {
      EXPECT_GE(point.total_s, choice.chunked_total_s - 1e-12);
    }
  }
  EXPECT_LE(choice.chunked_total_s, choice.mono_total_s);
  EXPECT_GT(choice.buckets, 0u);
}

TEST(Autotune, WorkloadForLayoutScalesWithParameters) {
  const auto small = workload_for_layout(
      ModelLayout({LayerSpec{"m", 128, 128}}), "small");
  const auto big = workload_for_layout(
      ModelLayout({LayerSpec{"m", 1024, 1024}}), "big");
  EXPECT_GT(big.fp32_compute_seconds, small.fp32_compute_seconds);
  EXPECT_EQ(big.name, "big");
}

}  // namespace
}  // namespace gcs::sched
