// The acceptance test of the socket transport subsystem: a multi-process
// SocketFabric DDP round (world size >= 4, all five schemes) produces
// bit-identical aggregated gradients and identical per-rank wire-byte
// counts to the in-process fabric. Every socket-backend aggregate() call
// below forks real OS processes (ranks 1..n-1; the test process itself
// participates as rank 0) and meshes them over Unix-domain sockets.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/aggregation_pipeline.h"
#include "core/factory.h"
#include "tensor/layout.h"

namespace gcs::core {
namespace {

constexpr int kWorld = 4;
constexpr int kRounds = 2;

/// The paper's five schemes, by factory spec.
const char* kSchemes[] = {
    "fp16",                     // dense baseline (ring all-reduce)
    "topk:b=8",                 // all-gather-bound sparse
    "topkc:b=8",                // consensus sparse (two stages)
    "thc:q=4:b=4:sat:partial",  // quantized, saturating (three stages)
    "powersgd:r=2",             // low-rank (two stages)
};

std::vector<std::vector<float>> random_grads(std::size_t d, int world,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> grads(static_cast<std::size_t>(world),
                                        std::vector<float>(d));
  for (int w = 0; w < world; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[static_cast<std::size_t>(w)]) {
      v = static_cast<float>(rng.next_gaussian());
    }
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

struct RunResult {
  std::vector<float> outputs;          // concatenated per-round outs
  std::vector<WireTraffic> wire;       // per-round meters
};

RunResult run_rounds(AggregationPipeline& pipeline, int world, int rounds) {
  const std::size_t d = pipeline.codec().dimension();
  RunResult result;
  std::vector<float> out(d);
  for (int r = 0; r < rounds; ++r) {
    const auto grads =
        random_grads(d, world, 7000 + static_cast<std::uint64_t>(r));
    const auto views = views_of(grads);
    pipeline.aggregate(std::span<const std::span<const float>>(views), out,
                       static_cast<std::uint64_t>(r));
    result.outputs.insert(result.outputs.end(), out.begin(), out.end());
    result.wire.push_back(pipeline.last_wire());
  }
  return result;
}

TEST(SocketPipeline, MatchesInProcessFabricForAllFiveSchemes) {
  const ModelLayout layout = make_transformer_like_layout(1 << 12);
  for (const char* spec : kSchemes) {
    PipelineConfig threaded;
    threaded.chunk_bytes = 512;
    threaded.backend = PipelineBackend::kThreadedFabric;
    AggregationPipeline in_process(
        make_scheme_codec(spec, layout, kWorld), threaded);
    const RunResult reference = run_rounds(in_process, kWorld, kRounds);

    PipelineConfig socket;
    socket.chunk_bytes = 512;
    socket.backend = PipelineBackend::kSocketFabric;
    AggregationPipeline over_sockets(
        make_scheme_codec(spec, layout, kWorld), socket);
    const RunResult real = run_rounds(over_sockets, kWorld, kRounds);

    // Bit-identical aggregated gradients, including cross-round state
    // (error feedback, PowerSGD warm starts) evolving identically.
    ASSERT_EQ(real.outputs.size(), reference.outputs.size()) << spec;
    EXPECT_EQ(std::memcmp(real.outputs.data(), reference.outputs.data(),
                          real.outputs.size() * sizeof(float)),
              0)
        << spec;

    // Identical per-rank wire bytes in both directions, every round.
    ASSERT_EQ(real.wire.size(), reference.wire.size()) << spec;
    for (std::size_t r = 0; r < real.wire.size(); ++r) {
      EXPECT_EQ(real.wire[r].sent, reference.wire[r].sent)
          << spec << " round " << r;
      EXPECT_EQ(real.wire[r].received, reference.wire[r].received)
          << spec << " round " << r;
      std::uint64_t total = 0;
      for (const auto b : real.wire[r].sent) total += b;
      EXPECT_GT(total, 0u) << spec << ": socket round moved no bytes?";
    }
  }
}

TEST(SocketPipeline, WorldSizeFivePowerOfTwoBreaker) {
  // World sizes off the power of two also mesh and agree (tree/broadcast
  // topologies degenerate differently at n=5).
  const ModelLayout layout({LayerSpec{"flat", 2048, 1}});
  PipelineConfig threaded;
  threaded.chunk_bytes = 256;
  threaded.backend = PipelineBackend::kThreadedFabric;
  AggregationPipeline in_process(
      make_scheme_codec("topkc:b=8", layout, 5), threaded);
  const RunResult reference = run_rounds(in_process, 5, 1);

  PipelineConfig socket;
  socket.chunk_bytes = 256;
  socket.backend = PipelineBackend::kSocketFabric;
  AggregationPipeline over_sockets(
      make_scheme_codec("topkc:b=8", layout, 5), socket);
  const RunResult real = run_rounds(over_sockets, 5, 1);

  EXPECT_EQ(std::memcmp(real.outputs.data(), reference.outputs.data(),
                        real.outputs.size() * sizeof(float)),
            0);
  EXPECT_EQ(real.wire[0].sent, reference.wire[0].sent);
  EXPECT_EQ(real.wire[0].received, reference.wire[0].received);
}

TEST(SocketPipeline, FactorySpecSelectsSocketBackend) {
  // fabric=socket through the legacy Compressor surface: same values as
  // the local reference path.
  const ModelLayout layout({LayerSpec{"flat", 1024, 1}});
  auto local = make_compressor("thc:q=4:b=4:sat:partial", layout, kWorld);
  auto socket = make_compressor(
      "thc:q=4:b=4:sat:partial:chunk=256:fabric=socket", layout, kWorld);

  const auto grads = random_grads(1024, kWorld, 42);
  const auto views = views_of(grads);
  std::vector<float> out_local(1024), out_socket(1024);
  local->aggregate(std::span<const std::span<const float>>(views),
                   out_local, 0);
  socket->aggregate(std::span<const std::span<const float>>(views),
                    out_socket, 0);
  EXPECT_EQ(std::memcmp(out_local.data(), out_socket.data(),
                        out_local.size() * sizeof(float)),
            0);
}

TEST(SocketPipeline, LocalBackendReportsNoWire) {
  const ModelLayout layout({LayerSpec{"flat", 512, 1}});
  AggregationPipeline pipeline(make_scheme_codec("fp16", layout, kWorld),
                               PipelineConfig{});
  const auto grads = random_grads(512, kWorld, 1);
  const auto views = views_of(grads);
  std::vector<float> out(512);
  pipeline.aggregate(std::span<const std::span<const float>>(views), out,
                     0);
  EXPECT_TRUE(pipeline.last_wire().sent.empty());
  EXPECT_TRUE(pipeline.last_wire().received.empty());
}

}  // namespace
}  // namespace gcs::core
