// Tests for quant/packing: tightness, round-trips, error handling.
#include "quant/packing.h"

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/check.h"
#include "common/rng.h"

namespace gcs {
namespace {

TEST(Packing, ExactByteCount) {
  const std::vector<std::uint16_t> v(13, 1);
  EXPECT_EQ(pack_lanes(v, 1).size(), 2u);
  EXPECT_EQ(pack_lanes(v, 2).size(), 4u);
  EXPECT_EQ(pack_lanes(v, 4).size(), 7u);
  EXPECT_EQ(pack_lanes(v, 8).size(), 13u);
  EXPECT_EQ(pack_lanes(v, 3).size(), 5u);  // 39 bits -> 5 bytes
}

TEST(Packing, KnownPattern4Bit) {
  const std::vector<std::uint16_t> v{0x1, 0x2, 0xF};
  const auto buf = pack_lanes(v, 4);
  ASSERT_EQ(buf.size(), 2u);
  // LSB-first: byte0 = 0x2 << 4 | 0x1, byte1 = 0xF.
  EXPECT_EQ(std::to_integer<std::uint8_t>(buf[0]), 0x21);
  EXPECT_EQ(std::to_integer<std::uint8_t>(buf[1]), 0x0F);
}

TEST(Packing, ValueExceedingWidthThrows) {
  const std::vector<std::uint16_t> v{4};  // needs 3 bits
  EXPECT_THROW(pack_lanes(v, 2), std::logic_error);
}

TEST(Packing, TruncatedUnpackThrows) {
  ByteBuffer buf(1);
  EXPECT_THROW(unpack_lanes(buf, 9, 1), Error);
}

TEST(Packing, EmptyInput) {
  EXPECT_TRUE(pack_lanes({}, 4).empty());
  EXPECT_TRUE(unpack_lanes({}, 0, 4).empty());
}

TEST(Packing, PackIntoAppends) {
  ByteBuffer buf(3, std::byte{0xAB});
  const std::vector<std::uint16_t> v{0xF};
  pack_lanes_into(v, 4, buf);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(std::to_integer<std::uint8_t>(buf[0]), 0xAB);
  EXPECT_EQ(std::to_integer<std::uint8_t>(buf[3]), 0x0F);
}

/// Naive LSB-first bit-stream packer: lane i lands at bit positions
/// [i*bits, (i+1)*bits) regardless of width. Pins down the wire format the
/// pow2 fast paths (byte-aligned shifts) and the generic carry loop must
/// both produce.
ByteBuffer pack_lanes_bitstream(std::span<const std::uint16_t> values,
                                unsigned bits) {
  ByteBuffer out((values.size() * bits + 7) / 8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (unsigned b = 0; b < bits; ++b) {
      if ((values[i] >> b) & 1u) {
        const std::size_t pos = i * bits + b;
        out[pos / 8] |= static_cast<std::byte>(1u << (pos % 8));
      }
    }
  }
  return out;
}

TEST(Packing, Pow2FastPathMatchesGenericBitOrder) {
  Rng rng(99);
  // Pow2 widths take the precomputed-shift fast path; odd widths take the
  // generic bit-offset loop. Both must emit the same LSB-first stream.
  for (unsigned bits : {1u, 2u, 3u, 4u, 5u, 8u}) {
    for (std::size_t count : {1u, 3u, 8u, 17u, 255u, 1024u}) {
      std::vector<std::uint16_t> v(count);
      const std::uint32_t mask = (1u << bits) - 1;
      for (auto& x : v) {
        x = static_cast<std::uint16_t>(rng.next_u64() & mask);
      }
      EXPECT_EQ(pack_lanes(v, bits), pack_lanes_bitstream(v, bits))
          << "bits=" << bits << " count=" << count;
    }
  }
}

class PackRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(PackRoundTrip, RandomLanes) {
  const unsigned bits = GetParam();
  Rng rng(bits);
  for (std::size_t count : {1u, 7u, 8u, 63u, 256u, 1000u}) {
    std::vector<std::uint16_t> v(count);
    const std::uint32_t mask = (bits == 16) ? 0xFFFF : ((1u << bits) - 1);
    for (auto& x : v) {
      x = static_cast<std::uint16_t>(rng.next_u64() & mask);
    }
    const auto packed = pack_lanes(v, bits);
    EXPECT_EQ(packed.size(), packed_bytes(count, bits));
    const auto back = unpack_lanes(packed, count, bits);
    EXPECT_EQ(back, v) << "bits=" << bits << " count=" << count;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWidths, PackRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 11u,
                                           16u));

}  // namespace
}  // namespace gcs
