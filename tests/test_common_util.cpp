// Tests for common/table, common/stats, common/cli.
#include <gtest/gtest.h>

#include "common/check.h"
#include "common/cli.h"
#include "common/stats.h"
#include "common/table.h"

namespace gcs {
namespace {

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"Task", "b=2"});
  t.add_row({"BERT", "3.87"});
  t.add_row({"VGG19", "13.9"});
  const auto s = t.to_string();
  EXPECT_NE(s.find("Task"), std::string::npos);
  EXPECT_NE(s.find("VGG19 | 13.9"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(AsciiTable, ArityMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(AsciiTable, CsvEscapesCommas) {
  AsciiTable t({"name", "value"});
  t.add_row({"a,b", "1"});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
}

TEST(Format, Significant) {
  EXPECT_EQ(format_sig(0.0865, 3), "0.0865");
  EXPECT_EQ(format_sig(0.0), "0");
  EXPECT_EQ(format_sig(21.5, 3), "21.5");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.097, 1), "9.7%");
}

TEST(RunningStats, MeanVarMinMax) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RollingAverage, WindowDropsOldSamples) {
  RollingAverage r(3);
  r.add(3.0);
  r.add(6.0);
  EXPECT_DOUBLE_EQ(r.value(), 4.5);
  r.add(9.0);
  EXPECT_DOUBLE_EQ(r.value(), 6.0);
  r.add(12.0);  // 3.0 falls out
  EXPECT_DOUBLE_EQ(r.value(), 9.0);
}

TEST(Percentile, InterpolatesLinearly) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 2.0);
}

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=2.5", "--name", "bert", "--flag"};
  CliFlags flags(5, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha", 0.0), 2.5);
  EXPECT_EQ(flags.get_string("name", ""), "bert");
  EXPECT_TRUE(flags.get_bool("flag", false));
  EXPECT_EQ(flags.get_int("missing", 9), 9);
}

TEST(Cli, HelpDetected) {
  const char* argv[] = {"prog", "--help"};
  CliFlags flags(2, argv);
  EXPECT_TRUE(flags.help_requested());
}

TEST(Cli, BadIntThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  CliFlags flags(2, argv);
  EXPECT_THROW(flags.get_int("n", 0), Error);
}

TEST(Cli, Positional) {
  const char* argv[] = {"prog", "file.csv", "--x=1"};
  CliFlags flags(3, argv);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "file.csv");
}

}  // namespace
}  // namespace gcs
