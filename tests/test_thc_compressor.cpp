// Tests for core/thc_compressor: homomorphic aggregation, rotation modes,
// saturation vs wide-bit aggregation, unbiasedness, clip accounting.
#include "core/thc_compressor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/vnmse.h"

namespace gcs::core {
namespace {

std::vector<std::vector<float>> random_grads(int n, std::size_t d,
                                             std::uint64_t seed,
                                             float scale = 1.0f) {
  std::vector<std::vector<float>> grads(n, std::vector<float>(d));
  for (int w = 0; w < n; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[w]) {
      v = scale * static_cast<float>(rng.next_gaussian());
    }
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

ThcConfig base_config(std::size_t d, int n) {
  ThcConfig config;
  config.dimension = d;
  config.world_size = n;
  config.q = 4;
  config.b = 4;
  config.saturation = true;
  config.rotation = RotationMode::kPartial;
  config.shared_memory_bytes = 256;  // small blocks for small test vectors
  return config;
}

TEST(ThcConfig, BitValidation) {
  ThcConfig c = base_config(64, 4);
  c.b = 8;
  c.saturation = true;  // saturation requires b == q
  EXPECT_FALSE(c.valid_bits());
  EXPECT_THROW(make_thc(c), std::logic_error);
  c.saturation = false;
  EXPECT_TRUE(c.valid_bits());
  EXPECT_NO_THROW(make_thc(c));
}

TEST(Thc, WideModeNeedsHeadroom) {
  ThcConfig c = base_config(64, 32);  // log2(32) = 5 > 8-4
  c.b = 8;
  c.saturation = false;
  EXPECT_THROW(make_thc(c), std::logic_error);
}

TEST(Thc, PathAndName) {
  auto c = make_thc(base_config(128, 4));
  EXPECT_EQ(c->path(), AggregationPath::kAllReduce);
  EXPECT_NE(c->name().find("THC"), std::string::npos);
  EXPECT_NE(c->name().find("Sat"), std::string::npos);
  EXPECT_NE(c->name().find("partial"), std::string::npos);
}

TEST(Thc, MeasuredBitsMatchQ) {
  const std::size_t d = 4096;
  auto config = base_config(d, 4);
  config.shared_memory_bytes = 4096;  // realistic block:metadata ratio
  auto c = make_thc(config);
  const auto grads = random_grads(4, d, 1);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  // Payload is exactly q bits/coordinate; metadata (ranges) is small.
  EXPECT_NEAR(8.0 * static_cast<double>(stats.payload_bytes) / d, 4.0,
              1e-9);
  EXPECT_LT(static_cast<double>(stats.metadata_bytes),
            0.2 * static_cast<double>(stats.payload_bytes));
}

class ThcModesTest
    : public ::testing::TestWithParam<std::tuple<RotationMode, bool>> {};

TEST_P(ThcModesTest, AggregateApproximatesTrueSum) {
  const auto [rotation, saturation] = GetParam();
  const std::size_t d = 2000;  // non-power-of-two: exercises padding
  ThcConfig config = base_config(d, 4);
  config.rotation = rotation;
  config.saturation = saturation;
  if (!saturation) config.b = 8;
  auto c = make_thc(config);
  const auto grads = random_grads(4, d, 7);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  c->aggregate(views, out, 0);
  const double err =
      vnmse(out, std::span<const std::span<const float>>(views));
  // q = 4 stochastic quantization alone contributes vNMSE ~ 0.05 on iid
  // Gaussian inputs; saturation clipping can add a few more points (the
  // paper's "other setups may affect this conclusion" caveat).
  EXPECT_LT(err, 0.25) << "rotation=" << static_cast<int>(rotation)
                       << " sat=" << saturation;
  if (!saturation) {
    EXPECT_LT(err, 0.10) << "wide mode should never clip";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ThcModesTest,
    ::testing::Combine(::testing::Values(RotationMode::kNone,
                                         RotationMode::kPartial,
                                         RotationMode::kFull),
                       ::testing::Bool()));

TEST(Thc, HigherQLowerError) {
  const std::size_t d = 4096;
  const auto grads = random_grads(4, d, 11);
  const auto views = views_of(grads);
  double prev = 1e9;
  for (unsigned q : {2u, 4u, 8u}) {
    ThcConfig config = base_config(d, 4);
    config.q = q;
    config.b = q;
    auto c = make_thc(config);
    std::vector<float> out(d);
    c->aggregate(views, out, 0);
    const double err =
        vnmse(out, std::span<const std::span<const float>>(views));
    EXPECT_LT(err, prev) << q;
    prev = err;
  }
}

TEST(Thc, RotationHelpsHeavyTailedGradients) {
  // A gradient with one huge spike wastes the quantization range; RHT
  // spreads the spike and shrinks per-chunk ranges -> lower error. This
  // is THC's core design premise.
  const std::size_t d = 4096;
  std::vector<std::vector<float>> grads(4, std::vector<float>(d));
  for (int w = 0; w < 4; ++w) {
    Rng rng(derive_seed(13, w));
    for (auto& v : grads[w]) {
      v = 0.01f * static_cast<float>(rng.next_gaussian());
    }
    grads[w][w * 10] = 5.0f;  // spikes
  }
  const auto views = views_of(grads);
  double errs[2];
  int i = 0;
  for (RotationMode mode : {RotationMode::kNone, RotationMode::kFull}) {
    ThcConfig config = base_config(d, 4);
    config.rotation = mode;
    config.q = config.b = 2;  // coarse quantization amplifies the effect
    auto c = make_thc(config);
    std::vector<float> out(d);
    c->aggregate(views, out, 0);
    errs[i++] = vnmse(out, std::span<const std::span<const float>>(views));
  }
  EXPECT_LT(errs[1], errs[0] * 0.8) << "full rotation should beat none";
}

TEST(Thc, SaturationRarelyClipsAfterRotation) {
  // The paper's argument for b = q: post-rotation values concentrate
  // around zero, so saturated aggregation almost never clips for n = 4.
  const std::size_t d = 8192;
  ThcConfig config = base_config(d, 4);
  config.rotation = RotationMode::kFull;
  auto c = make_thc(config);
  const auto grads = random_grads(4, d, 17);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  EXPECT_GT(stats.sat.additions, 0u);
  // iid Gaussian inputs are the adversarial case for cancellation (real
  // gradients are cross-worker correlated); a few percent is the ceiling.
  EXPECT_LT(stats.sat.clip_rate(), 0.05);
}

TEST(Thc, WideModeNeverClips) {
  const std::size_t d = 1024;
  ThcConfig config = base_config(d, 4);
  config.saturation = false;
  config.b = 8;
  auto c = make_thc(config);
  const auto grads = random_grads(4, d, 19, 10.0f);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  EXPECT_EQ(stats.sat.clips, 0u);
}

TEST(Thc, StochasticQuantizationIsUnbiasedOverRounds) {
  // Average the aggregate over many rounds with fixed inputs: converges
  // to the true sum (rotation uses fresh shared randomness per round).
  // Wide mode isolates the quantizer: saturation clipping is biased by
  // construction, plain summation is not.
  const std::size_t d = 512;
  ThcConfig config = base_config(d, 2);
  config.saturation = false;
  config.b = 8;
  auto c = make_thc(config);
  const auto grads = random_grads(2, d, 23);
  const auto views = views_of(grads);
  std::vector<double> mean(d, 0.0);
  std::vector<float> out(d);
  const int rounds = 300;
  for (int r = 0; r < rounds; ++r) {
    c->aggregate(views, out, r);
    for (std::size_t i = 0; i < d; ++i) mean[i] += out[i] / rounds;
  }
  double err = 0.0, ref = 0.0;
  for (std::size_t i = 0; i < d; ++i) {
    const double sum = grads[0][i] + grads[1][i];
    err += (mean[i] - sum) * (mean[i] - sum);
    ref += sum * sum;
  }
  EXPECT_LT(err / ref, 2e-3);
}

TEST(Thc, DeterministicGivenRound) {
  const std::size_t d = 256;
  auto c = make_thc(base_config(d, 4));
  const auto grads = random_grads(4, d, 29);
  const auto views = views_of(grads);
  std::vector<float> out1(d), out2(d);
  c->aggregate(views, out1, 5);
  c->aggregate(views, out2, 5);
  EXPECT_EQ(out1, out2);
  c->aggregate(views, out2, 6);
  EXPECT_NE(out1, out2);
}

TEST(Thc, Q2B2Works) {
  const std::size_t d = 1024;
  ThcConfig config = base_config(d, 4);
  config.q = config.b = 2;
  auto c = make_thc(config);
  const auto grads = random_grads(4, d, 31);
  std::vector<float> out(d);
  const auto views = views_of(grads);
  const auto stats = c->aggregate(views, out, 0);
  EXPECT_NEAR(8.0 * static_cast<double>(stats.payload_bytes) / d, 2.0, 1e-9);
  const double err =
      vnmse(out, std::span<const std::span<const float>>(views));
  // q = 2 over iid Gaussians is the regime where the paper itself reports
  // significant degradation (Figure 2, BERT b=q=2): coarse levels plus
  // saturated sums lose most per-round precision. Sanity-bound only.
  EXPECT_LT(err, 1.2);
}

}  // namespace
}  // namespace gcs::core
