// Tests for the live telemetry subsystem (src/telemetry/ + DESIGN.md
// "Telemetry layer"):
//   * histogram bucket semantics — boundary round-trips over all 252
//     buckets, zero and UINT64_MAX samples, monotone lower bounds;
//   * shard behaviour — cross-thread merge determinism (a snapshot is a
//     sum, independent of interleaving) and counter monotonicity under
//     concurrent increments;
//   * the off == zero-cost structural invariant — handles acquired while
//     disabled are dead and register nothing;
//   * Prometheus text exposition — TYPE lines, cumulative buckets, +Inf
//     fold, label rendering;
//   * the stats endpoint — a live HTTP scrape against a StatsServer on a
//     kernel-assigned port and on a tests/net_test_util.h ephemeral port;
//   * Chrome trace export — structural checks on the pid/tid/metadata
//     mapping from measure::RoundTrace;
//   * comm::TransportStats — the default Transport implementation (via
//     the in-process Fabric) and net::SocketFabric's full override.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "comm/fabric.h"
#include "measure/trace.h"
#include "net/launcher.h"
#include "net/socket.h"
#include "net/socket_fabric.h"
#include "telemetry/chrome_trace.h"
#include "telemetry/metrics.h"
#include "telemetry/stats_server.h"
#include "net_test_util.h"

namespace gcs::telemetry {
namespace {

/// Restores the enable state on scope exit — the state is process-global
/// and other suites in this binary must not inherit a test's toggle.
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) { set_enabled(on); }
  ~EnabledGuard() { set_enabled(false); }
};

/// Unique metric names per test run: the registry is append-only for the
/// process lifetime, so tests must not collide on names.
std::string unique_name(const std::string& stem) {
  static std::atomic<int> seq{0};
  return "test_" + stem + "_" + std::to_string(seq.fetch_add(1));
}

// ---------------------------------------------------------- bucket math

TEST(HistogramBuckets, BoundariesRoundTripForEveryBucket) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t lo = bucket_lower_bound(i);
    const std::uint64_t hi = bucket_upper_bound(i);
    EXPECT_LE(lo, hi) << "bucket " << i;
    EXPECT_EQ(bucket_index(lo), i) << "lower bound of bucket " << i;
    EXPECT_EQ(bucket_index(hi), i) << "upper bound of bucket " << i;
    if (i > 0) {
      EXPECT_EQ(bucket_upper_bound(i - 1), lo - 1)
          << "buckets " << i - 1 << "/" << i << " must tile";
    }
  }
}

TEST(HistogramBuckets, ZeroAndMaxLandInFirstAndLastBucket) {
  EXPECT_EQ(bucket_index(0), 0u);
  EXPECT_EQ(bucket_index(1), 1u);
  EXPECT_EQ(bucket_index(3), 3u);
  EXPECT_EQ(bucket_index(4), 4u);
  EXPECT_EQ(bucket_index(~std::uint64_t{0}), kHistogramBuckets - 1);
  EXPECT_EQ(bucket_upper_bound(kHistogramBuckets - 1), ~std::uint64_t{0});
}

TEST(HistogramBuckets, RelativeQuantizationErrorIsBounded) {
  // 4 sub-buckets per octave => a bucket spans at most 25% of its lower
  // bound (for v >= 4), the resolution claim in the header.
  for (std::size_t i = 4; i + 1 < kHistogramBuckets; ++i) {
    const double lo = static_cast<double>(bucket_lower_bound(i));
    const double hi = static_cast<double>(bucket_upper_bound(i));
    EXPECT_LE((hi - lo) / lo, 0.25 + 1e-12) << "bucket " << i;
  }
}

// ------------------------------------------------------ metric behaviour

TEST(Telemetry, DisabledAcquisitionIsDeadAndRegistersNothing) {
  EnabledGuard guard(false);
  auto& registry = Registry::instance();
  const std::size_t before = registry.metric_count();
  CounterHandle c = counter(unique_name("dead_counter"));
  GaugeHandle g = gauge(unique_name("dead_gauge"));
  HistogramHandle h = histogram(unique_name("dead_histogram"));
  EXPECT_FALSE(c.live());
  EXPECT_FALSE(g.live());
  EXPECT_FALSE(h.live());
  c.inc(5);
  g.set(7);
  h.observe(9);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(registry.metric_count(), before);
}

TEST(Telemetry, CounterIsMonotoneUnderConcurrentIncrements) {
  EnabledGuard guard(true);
  CounterHandle c = counter(unique_name("mono"));
  ASSERT_TRUE(c.live());

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> go{false};
  std::atomic<bool> writers_done{false};
  std::atomic<bool> regression{false};

  // A reader polling value() must never observe a decrease: shards are
  // individually monotone and new shards start at zero.
  std::thread reader([&] {
    std::uint64_t last = 0;
    while (!writers_done.load(std::memory_order_acquire)) {
      const std::uint64_t now = c.value();
      if (now < last) regression.store(true);
      last = now;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_FALSE(regression.load());
}

TEST(Telemetry, HistogramMergeAcrossThreadsIsDeterministic) {
  EnabledGuard guard(true);
  // The same multiset of samples, observed from many threads in whatever
  // interleaving the scheduler produces, must merge to the identical
  // snapshot (counts are sums, sum wraps in u64): run the experiment
  // twice and compare everything.
  auto run_once = [&] {
    HistogramHandle h = histogram(unique_name("merge"));
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&h, t] {
        for (std::uint64_t i = 0; i < 5000; ++i) {
          h.observe((i * 2654435761u + static_cast<std::uint64_t>(t)) %
                    1000000);
        }
      });
    }
    for (auto& th : threads) th.join();
    return h.snapshot();
  };

  const Histogram::Snapshot a = run_once();
  const Histogram::Snapshot b = run_once();
  EXPECT_EQ(a.count, 6u * 5000u);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
}

TEST(Telemetry, HistogramObservesZeroAndMax) {
  EnabledGuard guard(true);
  HistogramHandle h = histogram(unique_name("edges"));
  ASSERT_TRUE(h.live());
  h.observe(0);
  h.observe(~std::uint64_t{0});
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[kHistogramBuckets - 1], 1u);
  // 0 + (2^64 - 1) wraps to 2^64 - 1 exactly.
  EXPECT_EQ(snap.sum, ~std::uint64_t{0});
}

// ------------------------------------------------------------ exposition

TEST(Telemetry, PrometheusTextRendersAllThreeKinds) {
  EnabledGuard guard(true);
  const std::string cname = unique_name("prom_counter");
  const std::string gname = unique_name("prom_gauge");
  const std::string hname = unique_name("prom_hist");
  CounterHandle c = counter(cname, label_kv("peer", 2));
  GaugeHandle g = gauge(gname);
  HistogramHandle h = histogram(hname);
  c.inc(41);
  c.inc();
  g.set(-7);
  h.observe(0);
  h.observe(5);
  h.observe(5);

  const std::string text = Registry::instance().prometheus_text();
  EXPECT_NE(text.find("# TYPE " + cname + " counter"), std::string::npos);
  EXPECT_NE(text.find(cname + "{peer=\"2\"} 42"), std::string::npos);
  EXPECT_NE(text.find("# TYPE " + gname + " gauge"), std::string::npos);
  EXPECT_NE(text.find(gname + " -7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE " + hname + " histogram"), std::string::npos);
  // Cumulative buckets: le="0" sees the zero sample, le="5" all three.
  EXPECT_NE(text.find(hname + "_bucket{le=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find(hname + "_bucket{le=\"5\"} 3"), std::string::npos);
  EXPECT_NE(text.find(hname + "_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find(hname + "_sum 10"), std::string::npos);
  EXPECT_NE(text.find(hname + "_count 3"), std::string::npos);
}

// --------------------------------------------------------- stats server

/// Minimal HTTP/1.0 scrape against 127.0.0.1:port; returns the body.
std::string scrape(int port) {
  net::Address addr;
  addr.is_unix = false;
  addr.host = "127.0.0.1";
  addr.port = port;
  net::Socket sock = net::connect_to(addr, 2000);
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  sock.write_all(request.data(), request.size());
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(sock.fd(), buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("scrape read failed: ") + std::strerror(errno));
    }
    if (got == 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  const auto blank = response.find("\r\n\r\n");
  EXPECT_NE(blank, std::string::npos);
  return blank == std::string::npos ? "" : response.substr(blank + 4);
}

TEST(StatsServer, ServesPrometheusTextOnKernelAssignedPort) {
  EnabledGuard guard(true);
  const std::string cname = unique_name("served");
  counter(cname).inc(3);

  StatsServer server(0);  // port 0: kernel assigns
  ASSERT_GT(server.port(), 0);
  const std::string body = scrape(server.port());
  EXPECT_NE(body.find(cname + " 3"), std::string::npos);
  EXPECT_NE(body.find("# TYPE"), std::string::npos);
  server.stop();
  EXPECT_GE(server.scrapes_served(), 1u);
}

TEST(StatsServer, ServesOnEphemeralTestPort) {
  EnabledGuard guard(true);
  const std::string cname = unique_name("served_eph");
  counter(cname).inc(9);

  const int port = net::ephemeral_tcp_port();
  StatsServer server(port);
  EXPECT_EQ(server.port(), port);
  const std::string body = scrape(port);
  EXPECT_NE(body.find(cname + " 9"), std::string::npos);
}

/// Raw HTTP/1.0 exchange returning the full response (status line
/// included), for the routing assertions scrape() hides.
std::string raw_request(int port, const std::string& request) {
  net::Address addr;
  addr.is_unix = false;
  addr.host = "127.0.0.1";
  addr.port = port;
  net::Socket sock = net::connect_to(addr, 2000);
  sock.write_all(request.data(), request.size());
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::read(sock.fd(), buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("read failed: ") + std::strerror(errno));
    }
    if (got == 0) break;
    response.append(buf, static_cast<std::size_t>(got));
  }
  return response;
}

TEST(StatsServer, RoutesHealthzRootAndUnknownTargets) {
  EnabledGuard guard(true);
  const std::string cname = unique_name("routed");
  counter(cname).inc(1);

  StatsServer server(0);
  ASSERT_GT(server.port(), 0);

  // /healthz is a liveness probe: 200 "ok" without the registry text.
  const std::string health =
      raw_request(server.port(), "GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);
  EXPECT_EQ(health.find(cname), std::string::npos);

  // "/" and a bare (legacy) request both serve the exposition text.
  const std::string root =
      raw_request(server.port(), "GET / HTTP/1.0\r\n\r\n");
  EXPECT_NE(root.find("200 OK"), std::string::npos);
  EXPECT_NE(root.find(cname), std::string::npos);
  const std::string legacy = raw_request(server.port(), "\r\n\r\n");
  EXPECT_NE(legacy.find(cname), std::string::npos);

  // Query strings do not change the route.
  const std::string query = raw_request(
      server.port(), "GET /metrics?x=1 HTTP/1.0\r\n\r\n");
  EXPECT_NE(query.find("200 OK"), std::string::npos);
  EXPECT_NE(query.find(cname), std::string::npos);

  // Anything else is a 404, not a metrics dump.
  const std::string missing =
      raw_request(server.port(), "GET /nope HTTP/1.0\r\n\r\n");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);
  EXPECT_NE(missing.find("not found\n"), std::string::npos);
  EXPECT_EQ(missing.find(cname), std::string::npos);
}

// --------------------------------------------------------- chrome trace

measure::RoundTrace example_trace(std::uint64_t round, int rank) {
  measure::RoundTrace t;
  t.round = round;
  t.scheme = "topkc:b=8";
  t.backend = "socket";
  auto span = [&](measure::Phase phase, const char* label, int worker,
                  int peer, double s0, double s1) {
    measure::TraceSpan sp;
    sp.phase = phase;
    sp.label = label;
    sp.rank = rank;
    sp.worker = worker;
    sp.peer = peer;
    sp.bytes = 128;
    sp.start_s = s0;
    sp.end_s = s1;
    t.spans.push_back(sp);
  };
  span(measure::Phase::kRound, "round", -1, -1, 0.0, 1e-3);
  span(measure::Phase::kStage, "stage0", -1, -1, 0.0, 9e-4);
  span(measure::Phase::kEncode, "stage0", -1, -1, 0.0, 2e-4);
  span(measure::Phase::kEncode, "stage0", 1, -1, 0.0, 2e-4);
  span(measure::Phase::kSend, "", -1, 1, 3e-4, 4e-4);
  span(measure::Phase::kRecv, "", -1, 1, 3e-4, 5e-4);
  span(measure::Phase::kDecode, "finish", -1, -1, 9e-4, 1e-3);
  return t;
}

TEST(ChromeTrace, EmitsEventsAndMetadataWithStablePidTidMapping) {
  std::vector<measure::RoundTrace> traces;
  traces.push_back(example_trace(0, 2));
  traces.push_back(example_trace(1, 2));
  const std::string json = chrome_trace_json(traces, /*default_rank=*/2);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One process per rank, named.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 2\""), std::string::npos);
  // Thread lanes: pipeline, encode worker lanes, wire lanes.
  EXPECT_NE(json.find("\"pipeline\""), std::string::npos);
  EXPECT_NE(json.find("\"encode (caller)\""), std::string::npos);
  EXPECT_NE(json.find("\"encode worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"send -> peer 1\""), std::string::npos);
  EXPECT_NE(json.find("\"recv <- peer 1\""), std::string::npos);
  // Complete events with microsecond timestamps.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);

  // Structural sanity: braces and brackets balance (cheap well-formedness
  // check without a JSON parser).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ChromeTrace, LaterRoundsAreShiftedPastEarlierOnes) {
  std::vector<measure::RoundTrace> traces;
  traces.push_back(example_trace(0, 0));
  traces.push_back(example_trace(1, 0));
  const std::string json = chrome_trace_json(traces, 0);
  // Round 0's envelope starts at ts 0; round 1's must start strictly
  // after round 0 ended (1000 us + the 50 us inter-round gap).
  const auto first = json.find("\"ts\": 0,");
  EXPECT_NE(first, std::string::npos);
  EXPECT_NE(json.find("\"ts\": 1050,"), std::string::npos);
}

// ------------------------------------------------------- transport stats

TEST(TransportStats, DefaultImplementationCoversEpochAndByteTotals) {
  comm::Fabric fabric(2);
  fabric.send(0, 1, 7, ByteBuffer(16));
  (void)fabric.recv(1, 0, 7);
  const comm::TransportStats s0 = fabric.stats(0);
  const comm::TransportStats s1 = fabric.stats(1);
  EXPECT_EQ(s0.epoch, 0u);
  EXPECT_EQ(s0.bytes_sent, 16u);
  EXPECT_EQ(s0.bytes_received, 0u);
  EXPECT_EQ(s1.bytes_received, 16u);
  EXPECT_TRUE(s0.peers.empty());  // the default tracks no per-peer rows
  EXPECT_EQ(s0.stale_frames_rejected, 0u);
}

TEST(TransportStats, SocketFabricTracksPerPeerTraffic) {
  const std::string rendezvous = net::unique_unix_rendezvous();
  constexpr int kWorld = 3;
  std::vector<std::thread> threads;
  std::exception_ptr first_error;
  std::mutex error_mu;
  for (int rank = 0; rank < kWorld; ++rank) {
    threads.emplace_back([&, rank] {
      try {
        net::SocketFabricConfig config;
        config.rendezvous = rendezvous;
        config.world_size = kWorld;
        config.rank = rank;
        config.recv_timeout_ms = 20000;
        net::SocketFabric fabric(config);
        // Everyone sends (rank+1) * 10 bytes to every other rank.
        for (int dst = 0; dst < kWorld; ++dst) {
          if (dst == rank) continue;
          fabric.send(rank, dst, 100 + static_cast<std::uint64_t>(rank),
                      ByteBuffer(static_cast<std::size_t>((rank + 1) * 10)));
        }
        for (int src = 0; src < kWorld; ++src) {
          if (src == rank) continue;
          const comm::Message m =
              fabric.recv(rank, src, 100 + static_cast<std::uint64_t>(src));
          EXPECT_EQ(m.payload.size(),
                    static_cast<std::size_t>((src + 1) * 10));
        }
        const comm::TransportStats s = fabric.stats(rank);
        EXPECT_EQ(s.epoch, 0u);
        EXPECT_EQ(s.bytes_sent,
                  static_cast<std::uint64_t>((rank + 1) * 10 * (kWorld - 1)));
        ASSERT_EQ(s.peers.size(), static_cast<std::size_t>(kWorld - 1));
        int last_rank = -1;
        for (const auto& peer : s.peers) {
          EXPECT_GT(peer.original_rank, last_rank);  // sorted
          last_rank = peer.original_rank;
          EXPECT_EQ(peer.bytes_sent,
                    static_cast<std::uint64_t>((rank + 1) * 10));
          EXPECT_EQ(peer.bytes_received,
                    static_cast<std::uint64_t>((peer.original_rank + 1) * 10));
        }
        EXPECT_EQ(s.stale_frames_rejected, 0u);
        EXPECT_EQ(s.peer_failures, 0u);
        EXPECT_EQ(s.rebuilds, 0u);
      } catch (...) {
        std::lock_guard lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace
}  // namespace gcs::telemetry
