// Tests for train/dataset: determinism, sharding, learnability structure.
#include "train/dataset.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace gcs::train {
namespace {

TEST(MarkovLm, ShapesAndDeterminism) {
  MarkovLmDataset::Config config;
  config.vocab = 16;
  config.eval_samples = 100;
  MarkovLmDataset data(config);
  EXPECT_EQ(data.feature_dim(), 32u);
  EXPECT_EQ(data.num_classes(), 16u);

  Batch a, b;
  data.sample_batch(0, 5, 8, a);
  data.sample_batch(0, 5, 8, b);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  data.sample_batch(1, 5, 8, b);
  EXPECT_NE(a.x, b.x);  // different worker, different shard
}

TEST(MarkovLm, OneHotEncoding) {
  MarkovLmDataset::Config config;
  config.vocab = 8;
  MarkovLmDataset data(config);
  Batch batch;
  data.sample_batch(0, 0, 16, batch);
  for (std::size_t s = 0; s < batch.batch; ++s) {
    float sum = 0.0f;
    for (std::size_t f = 0; f < batch.features; ++f) {
      const float v = batch.x[s * batch.features + f];
      EXPECT_TRUE(v == 0.0f || v == 1.0f);
      sum += v;
    }
    EXPECT_EQ(sum, 2.0f);  // exactly two one-hots (two context tokens)
    EXPECT_GE(batch.y[s], 0);
    EXPECT_LT(batch.y[s], 8);
  }
}

TEST(MarkovLm, TransitionsArePeaky) {
  // With small concentration, contexts should have a dominant next token
  // (otherwise the task is unlearnable noise).
  MarkovLmDataset::Config config;
  config.vocab = 8;
  config.concentration = 0.25;
  MarkovLmDataset data(config);
  // Estimate the empirical distribution of y given a fixed context by
  // sampling many batches and conditioning.
  std::map<std::pair<int, int>, std::map<int, int>> counts;
  Batch batch;
  for (int r = 0; r < 200; ++r) {
    data.sample_batch(0, r, 32, batch);
    for (std::size_t s = 0; s < batch.batch; ++s) {
      int t2 = -1, t1 = -1;
      for (int f = 0; f < 8; ++f) {
        if (batch.x[s * batch.features + f] == 1.0f) t2 = f;
        if (batch.x[s * batch.features + 8 + f] == 1.0f) t1 = f;
      }
      counts[{t2, t1}][batch.y[s]]++;
    }
  }
  // Over sampled contexts with enough data, the mode should dominate.
  int peaky = 0, tested = 0;
  for (const auto& [ctx, dist] : counts) {
    int total = 0, best = 0;
    for (const auto& [y, c] : dist) {
      total += c;
      best = std::max(best, c);
    }
    if (total >= 50) {
      ++tested;
      if (static_cast<double>(best) / total > 0.4) ++peaky;
    }
  }
  ASSERT_GT(tested, 3);
  EXPECT_GT(static_cast<double>(peaky) / tested, 0.5);
}

TEST(MarkovLm, EvalSetIsFixed) {
  MarkovLmDataset::Config config;
  config.vocab = 8;
  config.eval_samples = 64;
  MarkovLmDataset d1(config), d2(config);
  EXPECT_EQ(d1.eval_set().x, d2.eval_set().x);
  EXPECT_EQ(d1.eval_set().y, d2.eval_set().y);
  EXPECT_EQ(d1.eval_set().batch, 64u);
}

TEST(GaussianMixture, ShapesAndLabels) {
  GaussianMixtureDataset::Config config;
  config.features = 32;
  config.classes = 4;
  config.eval_samples = 50;
  GaussianMixtureDataset data(config);
  EXPECT_EQ(data.feature_dim(), 32u);
  EXPECT_EQ(data.num_classes(), 4u);
  Batch batch;
  data.sample_batch(2, 9, 16, batch);
  EXPECT_EQ(batch.batch, 16u);
  EXPECT_EQ(batch.x.size(), 16u * 32u);
  for (int y : batch.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
  }
}

TEST(GaussianMixture, Determinism) {
  GaussianMixtureDataset::Config config;
  GaussianMixtureDataset data(config);
  Batch a, b;
  data.sample_batch(1, 2, 8, a);
  data.sample_batch(1, 2, 8, b);
  EXPECT_EQ(a.x, b.x);
  data.sample_batch(1, 3, 8, b);
  EXPECT_NE(a.x, b.x);
}

TEST(GaussianMixture, ClassesAreSeparable) {
  // Nearest-mean classification on clean means should beat chance by a
  // lot — the task must be learnable.
  GaussianMixtureDataset::Config config;
  config.features = 64;
  config.classes = 8;
  config.separation = 3.0;
  config.noise = 1.0;
  config.eval_samples = 512;
  GaussianMixtureDataset data(config);
  const Batch& eval = data.eval_set();
  // Estimate class means from many training samples.
  std::vector<double> means(8 * 64, 0.0);
  std::vector<int> counts(8, 0);
  Batch batch;
  for (int r = 0; r < 100; ++r) {
    data.sample_batch(0, r, 32, batch);
    for (std::size_t s = 0; s < batch.batch; ++s) {
      counts[batch.y[s]]++;
      for (std::size_t f = 0; f < 64; ++f) {
        means[batch.y[s] * 64 + f] += batch.x[s * 64 + f];
      }
    }
  }
  for (int c = 0; c < 8; ++c) {
    for (std::size_t f = 0; f < 64; ++f) {
      means[c * 64 + f] /= std::max(counts[c], 1);
    }
  }
  int correct = 0;
  for (std::size_t s = 0; s < eval.batch; ++s) {
    int best = 0;
    double best_d = 1e300;
    for (int c = 0; c < 8; ++c) {
      double dist = 0.0;
      for (std::size_t f = 0; f < 64; ++f) {
        const double diff = eval.x[s * 64 + f] - means[c * 64 + f];
        dist += diff * diff;
      }
      if (dist < best_d) {
        best_d = dist;
        best = c;
      }
    }
    if (best == eval.y[s]) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / eval.batch, 0.8);
}

TEST(GaussianMixture, SeparationControlsDifficulty) {
  // Larger separation -> eval samples sit closer to their own mean than
  // to others more often. Probe via mean pairwise distances.
  GaussianMixtureDataset::Config easy;
  easy.separation = 4.0;
  GaussianMixtureDataset::Config hard;
  hard.separation = 0.5;
  // Just verify both construct and produce distinct eval sets.
  GaussianMixtureDataset de(easy), dh(hard);
  EXPECT_NE(de.eval_set().x, dh.eval_set().x);
}

}  // namespace
}  // namespace gcs::train
