// Tests for the layered aggregation stack: the AggregationPipeline path
// produces bit-identical aggregated sums to the monolithic path for all
// five schemes, at every chunk size, on both execution backends (local
// reference and threaded fabric), with cross-round state (EF memories,
// PowerSGD warm starts) evolving identically.
#include "core/aggregation_pipeline.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>

#include "common/rng.h"
#include "core/baselines.h"
#include "core/factory.h"
#include "core/powersgd_compressor.h"
#include "core/thc_compressor.h"
#include "core/topk_compressor.h"
#include "core/topkc_compressor.h"
#include "tensor/layout.h"

namespace gcs::core {
namespace {

constexpr std::size_t kDim = 1024;
constexpr int kWorld = 4;

std::vector<std::vector<float>> random_grads(std::size_t d,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> grads(kWorld, std::vector<float>(d));
  for (int w = 0; w < kWorld; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[w]) v = static_cast<float>(rng.next_gaussian());
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

ModelLayout flat_layout(std::size_t d) {
  return ModelLayout({LayerSpec{"flat", d, 1}});
}

ModelLayout matrix_layout() {
  // A couple of genuinely 2-D layers plus a bias so PowerSGD exercises
  // both the low-rank and the dense-exact branch.
  return ModelLayout({LayerSpec{"fc1", 32, 24},
                      LayerSpec{"b1", 32, 1},
                      LayerSpec{"fc2", 8, 28}});
}

struct SchemeCase {
  const char* label;
  std::function<SchemeCodecPtr()> make;
};

std::vector<SchemeCase> scheme_cases() {
  std::vector<SchemeCase> cases;
  cases.push_back({"fp32", [] {
                     BaselineConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.comm_precision = Precision::kFp32;
                     return make_baseline_codec(c);
                   }});
  cases.push_back({"fp16", [] {
                     BaselineConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.comm_precision = Precision::kFp16;
                     return make_baseline_codec(c);
                   }});
  cases.push_back({"fp16-tree", [] {
                     BaselineConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.comm_precision = Precision::kFp16;
                     c.use_tree = true;
                     return make_baseline_codec(c);
                   }});
  cases.push_back({"topk", [] {
                     TopKConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.k = 64;
                     return make_topk_codec(c);
                   }});
  cases.push_back({"topk-delta", [] {
                     TopKConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.k = 48;
                     c.delta_indices = true;
                     return make_topk_codec(c);
                   }});
  cases.push_back({"topkc", [] {
                     TopKCConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.chunk_size = 32;
                     c.num_top_chunks = 6;
                     return make_topkc_codec(c);
                   }});
  cases.push_back({"topkc-perm", [] {
                     TopKCConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.chunk_size = 32;
                     c.num_top_chunks = 6;
                     c.permute = true;
                     return make_topkc_codec(c);
                   }});
  cases.push_back({"thc-sat", [] {
                     ThcConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.q = 4;
                     c.b = 4;
                     c.saturation = true;
                     c.rotation = RotationMode::kPartial;
                     c.shared_memory_bytes = 1024;
                     return make_thc_codec(c);
                   }});
  cases.push_back({"thc-wide-full", [] {
                     ThcConfig c;
                     c.dimension = kDim;
                     c.world_size = kWorld;
                     c.q = 4;
                     c.b = 8;
                     c.saturation = false;
                     c.rotation = RotationMode::kFull;
                     return make_thc_codec(c);
                   }});
  cases.push_back({"powersgd", [] {
                     PowerSgdConfig c;
                     c.layout = matrix_layout();
                     c.world_size = kWorld;
                     c.rank = 2;
                     return make_powersgd_codec(c);
                   }});
  return cases;
}

std::size_t case_dimension(const SchemeCodec& codec) {
  return codec.dimension();
}

/// Runs `rounds` aggregation rounds and returns the concatenated outputs,
/// so cross-round state (EF, warm starts) is part of the comparison.
std::vector<float> run_rounds(AggregationPipeline& pipeline, int rounds,
                              std::vector<RoundStats>* stats_out = nullptr) {
  const std::size_t d = case_dimension(pipeline.codec());
  std::vector<float> all;
  std::vector<float> out(d);
  for (int r = 0; r < rounds; ++r) {
    const auto grads = random_grads(d, 9000 + static_cast<std::uint64_t>(r));
    const auto views = views_of(grads);
    const RoundStats stats = pipeline.aggregate(
        std::span<const std::span<const float>>(views), out,
        static_cast<std::uint64_t>(r));
    if (stats_out != nullptr) stats_out->push_back(stats);
    all.insert(all.end(), out.begin(), out.end());
  }
  return all;
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(AggregationPipeline, ChunkedMatchesMonolithicForAllSchemes) {
  for (const auto& scheme : scheme_cases()) {
    AggregationPipeline mono(scheme.make(), PipelineConfig{});
    std::vector<RoundStats> mono_stats;
    const auto mono_out = run_rounds(mono, 3, &mono_stats);
    for (std::size_t chunk_bytes : {64u, 200u, 4096u}) {
      PipelineConfig config;
      config.chunk_bytes = chunk_bytes;
      AggregationPipeline chunked(scheme.make(), config);
      std::vector<RoundStats> chunked_stats;
      const auto chunked_out = run_rounds(chunked, 3, &chunked_stats);
      EXPECT_TRUE(bit_identical(chunked_out, mono_out))
          << scheme.label << " chunk_bytes=" << chunk_bytes;
      ASSERT_EQ(chunked_stats.size(), mono_stats.size());
      for (std::size_t r = 0; r < mono_stats.size(); ++r) {
        EXPECT_EQ(chunked_stats[r].payload_bytes,
                  mono_stats[r].payload_bytes)
            << scheme.label;
        EXPECT_EQ(chunked_stats[r].metadata_bytes,
                  mono_stats[r].metadata_bytes)
            << scheme.label;
      }
    }
  }
}

TEST(AggregationPipeline, ThreadedFabricMatchesLocalReference) {
  for (const auto& scheme : scheme_cases()) {
    AggregationPipeline local(scheme.make(), PipelineConfig{});
    const auto local_out = run_rounds(local, 2);
    PipelineConfig threaded_config;
    threaded_config.threaded_fabric = true;
    threaded_config.chunk_bytes = 128;
    AggregationPipeline threaded(scheme.make(), threaded_config);
    const auto threaded_out = run_rounds(threaded, 2);
    EXPECT_TRUE(bit_identical(threaded_out, local_out)) << scheme.label;
  }
}

TEST(AggregationPipeline, AdapterPreservesCompressorContract) {
  // The factory's Compressor is a thin adapter over the pipeline: same
  // name/path/world_size surface, same aggregate values with and without
  // the chunk option.
  const auto layout = flat_layout(kDim);
  auto plain = make_compressor("fp16", layout, kWorld);
  auto chunked = make_compressor("fp16:chunk=256", layout, kWorld);
  EXPECT_EQ(plain->name(), chunked->name());
  EXPECT_EQ(plain->path(), chunked->path());
  EXPECT_EQ(plain->world_size(), chunked->world_size());

  const auto grads = random_grads(kDim, 123);
  const auto views = views_of(grads);
  std::vector<float> out_a(kDim), out_b(kDim);
  plain->aggregate(std::span<const std::span<const float>>(views), out_a, 0);
  chunked->aggregate(std::span<const std::span<const float>>(views), out_b,
                     0);
  EXPECT_TRUE(bit_identical(out_a, out_b));
}

TEST(AggregationPipeline, FabricSpecFlagRunsThreaded) {
  // "fabric" routes the factory product through the threaded fabric; the
  // result stays bit-identical to the local path.
  const auto layout = flat_layout(256);
  auto local = make_compressor("topkc:b=8", layout, kWorld);
  auto fabric = make_compressor("topkc:b=8:chunk=64:fabric", layout, kWorld);
  const auto grads = random_grads(256, 321);
  const auto views = views_of(grads);
  std::vector<float> out_a(256), out_b(256);
  local->aggregate(std::span<const std::span<const float>>(views), out_a, 0);
  fabric->aggregate(std::span<const std::span<const float>>(views), out_b,
                    0);
  EXPECT_TRUE(bit_identical(out_a, out_b));
}

TEST(AggregationPipeline, AllGatherAllowsAsymmetricPayloads) {
  // TopK's delta format inserts per-worker padding entries when an index
  // gap exceeds 16 bits, so gather payload sizes can differ across
  // workers; the pipeline must carry that (the reducible routes still
  // require symmetry).
  const std::size_t d = 300000;
  TopKConfig config;
  config.dimension = d;
  config.world_size = 2;
  config.k = 2;
  config.error_feedback = false;
  config.delta_indices = true;

  std::vector<std::vector<float>> grads(2, std::vector<float>(d, 0.0f));
  grads[0][0] = 4.0f;
  grads[0][d - 1] = 3.0f;  // gap ~300k: forces padding entries
  grads[1][0] = 2.0f;
  grads[1][1] = 1.0f;  // no padding: smaller payload
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());

  PipelineConfig chunked_config;
  chunked_config.chunk_bytes = 64;
  PipelineConfig threaded_config = chunked_config;
  threaded_config.threaded_fabric = true;
  for (const auto& config_variant :
       {PipelineConfig{}, chunked_config, threaded_config}) {
    AggregationPipeline pipeline(make_topk_codec(config), config_variant);
    std::vector<float> out(d);
    pipeline.aggregate(std::span<const std::span<const float>>(views), out,
                       0);
    EXPECT_FLOAT_EQ(out[0], 6.0f);
    EXPECT_FLOAT_EQ(out[1], 1.0f);
    EXPECT_FLOAT_EQ(out[d - 1], 3.0f);
  }
}

// A minimal codec routing its payload through the parameter server — the
// pipeline's third route, which none of the paper's five schemes uses on
// its main path but the layer must carry (the paper's PS critique needs a
// working PS path to measure).
class PsEchoCodec final : public SchemeCodec {
 public:
  explicit PsEchoCodec(std::size_t d, int n)
      : d_(d), n_(n), op_(comm::make_fp32_sum()) {}

  std::string name() const override { return "PsEcho"; }
  AggregationPath path() const override {
    return AggregationPath::kParameterServer;
  }
  int world_size() const override { return n_; }
  std::size_t dimension() const override { return d_; }

  class Round final : public CodecRound {
   public:
    Round(const PsEchoCodec& codec,
          std::span<const std::span<const float>> grads)
        : codec_(codec), grads_(grads) {}

    bool next_stage(WireStage& stage) override {
      if (done_) return false;
      done_ = true;
      stage = WireStage{};
      stage.name = "ps-values";
      stage.route = AggregationPath::kParameterServer;
      stage.op = codec_.op_.get();
      return true;
    }
    ByteBuffer encode(int worker) override {
      ByteBuffer buf;
      ByteWriter w(buf);
      w.put_span<float>(grads_[static_cast<std::size_t>(worker)]);
      return buf;
    }
    void absorb_reduced(const ByteBuffer& reduced) override {
      reduced_ = reduced;
    }
    void finish(std::span<float> out, RoundStats& /*stats*/) override {
      std::memcpy(out.data(), reduced_.data(), out.size() * sizeof(float));
    }

   private:
    const PsEchoCodec& codec_;
    std::span<const std::span<const float>> grads_;
    bool done_ = false;
    ByteBuffer reduced_;
  };

  std::unique_ptr<CodecRound> begin_round(
      std::span<const std::span<const float>> grads,
      std::uint64_t /*round*/) override {
    return std::make_unique<Round>(*this, grads);
  }
  void reset() override {}

 private:
  friend class Round;
  std::size_t d_;
  int n_;
  std::unique_ptr<comm::ReduceOp> op_;
};

TEST(AggregationPipeline, ParameterServerRouteFoldsInRankOrder) {
  const std::size_t d = 96;
  const auto grads = random_grads(d, 55);
  const auto views = views_of(grads);

  // Expected: rank-order fold starting from the server's buffer.
  std::vector<float> expected(grads[0]);
  for (int w = 1; w < kWorld; ++w) {
    for (std::size_t i = 0; i < d; ++i) expected[i] += grads[w][i];
  }

  for (bool threaded : {false, true}) {
    PipelineConfig config;
    config.chunk_bytes = 32;
    config.threaded_fabric = threaded;
    AggregationPipeline pipeline(std::make_unique<PsEchoCodec>(d, kWorld),
                                 config);
    std::vector<float> out(d);
    pipeline.aggregate(std::span<const std::span<const float>>(views), out,
                       0);
    for (std::size_t i = 0; i < d; ++i) {
      EXPECT_NEAR(out[i], expected[i], 1e-4f) << "threaded=" << threaded;
    }
  }
}

}  // namespace
}  // namespace gcs::core
