// Tests for train/optimizer and train/schedule.
#include <gtest/gtest.h>

#include "train/optimizer.h"
#include "train/schedule.h"

namespace gcs::train {
namespace {

TEST(Sgd, PlainStepWithoutMomentum) {
  SgdMomentum opt(2, 0.5, 0.0);
  std::vector<float> params{1.0f, 2.0f};
  const std::vector<float> grad{2.0f, -2.0f};
  opt.step(params, grad);
  EXPECT_EQ(params[0], 0.0f);
  EXPECT_EQ(params[1], 3.0f);
}

TEST(Sgd, MomentumAccumulates) {
  SgdMomentum opt(1, 1.0, 0.5);
  std::vector<float> params{0.0f};
  const std::vector<float> grad{1.0f};
  opt.step(params, grad);  // v=1, p=-1
  EXPECT_EQ(params[0], -1.0f);
  opt.step(params, grad);  // v=1.5, p=-2.5
  EXPECT_EQ(params[0], -2.5f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  SgdMomentum opt(1, 0.1, 0.0, 0.5);
  std::vector<float> params{10.0f};
  const std::vector<float> grad{0.0f};
  opt.step(params, grad);
  EXPECT_NEAR(params[0], 10.0f - 0.1f * 5.0f, 1e-6f);
}

TEST(Sgd, ResetClearsVelocity) {
  SgdMomentum opt(1, 1.0, 0.9);
  std::vector<float> params{0.0f};
  const std::vector<float> grad{1.0f};
  opt.step(params, grad);
  opt.reset();
  params[0] = 0.0f;
  opt.step(params, grad);
  EXPECT_EQ(params[0], -1.0f);  // no leftover momentum
}

TEST(Sgd, LearningRateSetter) {
  SgdMomentum opt(1, 1.0, 0.0);
  opt.set_learning_rate(0.25);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.25);
  std::vector<float> params{0.0f};
  opt.step(params, std::vector<float>{4.0f});
  EXPECT_EQ(params[0], -1.0f);
}

TEST(Sgd, SizeMismatchThrows) {
  SgdMomentum opt(2, 0.1);
  std::vector<float> params{1.0f};
  EXPECT_THROW(opt.step(params, std::vector<float>{1.0f}),
               std::logic_error);
}

TEST(StepDecay, DecaysAtMilestones) {
  StepDecaySchedule sched(1.0, 0.5, 100);
  EXPECT_DOUBLE_EQ(sched.at(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.at(99), 1.0);
  EXPECT_DOUBLE_EQ(sched.at(100), 0.5);
  EXPECT_DOUBLE_EQ(sched.at(250), 0.25);
}

TEST(StepDecay, ZeroMilestoneMeansConstant) {
  StepDecaySchedule sched(0.3, 0.5, 0);
  EXPECT_DOUBLE_EQ(sched.at(100000), 0.3);
}

TEST(EarlyStopping, StopsAfterPatience) {
  EarlyStopping stop(MetricDirection::kHigherIsBetter, 3, 0.0);
  EXPECT_FALSE(stop.update(0.5));
  EXPECT_FALSE(stop.update(0.6));  // improvement
  EXPECT_FALSE(stop.update(0.6));  // 1
  EXPECT_FALSE(stop.update(0.59));  // 2
  EXPECT_TRUE(stop.update(0.58));   // 3 -> converged
  EXPECT_TRUE(stop.converged());
  EXPECT_DOUBLE_EQ(stop.best(), 0.6);
}

TEST(EarlyStopping, LowerIsBetterDirection) {
  EarlyStopping stop(MetricDirection::kLowerIsBetter, 2, 0.0);
  EXPECT_FALSE(stop.update(5.0));
  EXPECT_FALSE(stop.update(4.0));
  EXPECT_FALSE(stop.update(4.5));
  EXPECT_TRUE(stop.update(4.2));
  EXPECT_DOUBLE_EQ(stop.best(), 4.0);
}

TEST(EarlyStopping, MinDeltaIgnoresTinyImprovements) {
  EarlyStopping stop(MetricDirection::kHigherIsBetter, 2, 0.1);
  EXPECT_FALSE(stop.update(0.5));
  EXPECT_FALSE(stop.update(0.55));  // below min_delta: counts as no gain
  EXPECT_TRUE(stop.update(0.59));
}

TEST(EarlyStopping, ResetRestartsTracking) {
  EarlyStopping stop(MetricDirection::kHigherIsBetter, 1, 0.0);
  stop.update(1.0);
  stop.update(0.9);
  ASSERT_TRUE(stop.converged());
  stop.reset();
  EXPECT_FALSE(stop.converged());
  EXPECT_FALSE(stop.update(0.1));
}

}  // namespace
}  // namespace gcs::train
