// Acceptance tests of the scheduler layer on the value path: bucketed
// (buckets=layer) multi-worker (workers>1) aggregation is bit-identical
// to the PR 1 single-threaded size-chunked pipeline for all five schemes,
// across world sizes 2-8, on the local, threaded-fabric and socket-fabric
// backends — and wire bytes per rank are unchanged by the scheduler knobs
// (the bucket plan changes the schedule, never the traffic).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/aggregation_pipeline.h"
#include "core/factory.h"
#include "tensor/layout.h"

namespace gcs::core {
namespace {

constexpr int kRounds = 2;

/// The paper's five schemes, by factory spec.
const char* kSchemes[] = {
    "fp16",                     // dense baseline (ring all-reduce)
    "topk:b=8",                 // all-gather-bound sparse
    "topkc:b=8",                // consensus sparse (two stages)
    "thc:q=4:b=4:sat:partial",  // quantized, saturating (three stages)
    "powersgd:r=2",             // low-rank (two stages)
};

std::vector<std::vector<float>> random_grads(std::size_t d, int world,
                                             std::uint64_t seed) {
  std::vector<std::vector<float>> grads(static_cast<std::size_t>(world),
                                        std::vector<float>(d));
  for (int w = 0; w < world; ++w) {
    Rng rng(derive_seed(seed, w));
    for (auto& v : grads[static_cast<std::size_t>(w)]) {
      v = static_cast<float>(rng.next_gaussian());
    }
  }
  return grads;
}

std::vector<std::span<const float>> views_of(
    const std::vector<std::vector<float>>& grads) {
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  return views;
}

struct RunResult {
  std::vector<float> outputs;     ///< concatenated per-round outs
  std::vector<WireTraffic> wire;  ///< per-round meters
};

RunResult run_rounds(Compressor& compressor, std::size_t d, int world,
                     AggregationPipeline* wire_source = nullptr) {
  RunResult result;
  std::vector<float> out(d);
  for (int r = 0; r < kRounds; ++r) {
    const auto grads =
        random_grads(d, world, 8600 + static_cast<std::uint64_t>(r));
    const auto views = views_of(grads);
    compressor.aggregate(std::span<const std::span<const float>>(views), out,
                         static_cast<std::uint64_t>(r));
    result.outputs.insert(result.outputs.end(), out.begin(), out.end());
    if (wire_source != nullptr) result.wire.push_back(wire_source->last_wire());
  }
  return result;
}

RunResult run_rounds(AggregationPipeline& pipeline, int world) {
  const std::size_t d = pipeline.codec().dimension();
  RunResult result;
  std::vector<float> out(d);
  for (int r = 0; r < kRounds; ++r) {
    const auto grads =
        random_grads(d, world, 8600 + static_cast<std::uint64_t>(r));
    const auto views = views_of(grads);
    pipeline.aggregate(std::span<const std::span<const float>>(views), out,
                       static_cast<std::uint64_t>(r));
    result.outputs.insert(result.outputs.end(), out.begin(), out.end());
    result.wire.push_back(pipeline.last_wire());
  }
  return result;
}

bool bit_identical(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// A small but genuinely multi-layer layout (make_transformer_like_layout
/// collapses to one layer at test scale, which would degenerate every
/// layer-aligned plan to a single bucket): mixed matrices and biases,
/// ~4.5K coordinates, so bucket=4096 (1024 elements) yields several
/// buckets and PowerSGD exercises both its low-rank and dense branches.
ModelLayout test_layout() {
  return ModelLayout({LayerSpec{"fc1", 48, 32}, LayerSpec{"b1", 48, 1},
                      LayerSpec{"fc2", 32, 40}, LayerSpec{"b2", 32, 1},
                      LayerSpec{"ln", 64, 1}, LayerSpec{"fc3", 24, 36},
                      LayerSpec{"b3", 24, 1}, LayerSpec{"head", 30, 20},
                      LayerSpec{"hb", 30, 1}});
}

TEST(SchedPipeline, BucketedMultiWorkerMatchesSizeChunkedLocally) {
  // Local reference backend, every world size 2-8: the bucketed plan and
  // the worker pool are value-transparent.
  const ModelLayout layout = test_layout();
  const std::size_t d = layout.total_size();
  for (int world = 2; world <= 8; ++world) {
    for (const char* spec : kSchemes) {
      auto reference =
          make_compressor(std::string(spec) + ":chunk=512", layout, world);
      auto bucketed = make_compressor(
          std::string(spec) + ":buckets=layer:bucket=4096:workers=2",
          layout, world);
      const auto ref = run_rounds(*reference, d, world);
      const auto got = run_rounds(*bucketed, d, world);
      EXPECT_TRUE(bit_identical(got.outputs, ref.outputs))
          << spec << " world=" << world;
    }
  }
}

TEST(SchedPipeline, BucketedMultiWorkerMatchesOnThreadedFabric) {
  // Threaded fabric: the hand-off path (collective threads start while
  // later ranks' payloads are still encoding) must stay bit-identical to
  // the single-threaded size-chunked run AND meter identical per-rank
  // wire bytes for the same chunk plan.
  const ModelLayout layout = test_layout();
  for (int world : {2, 3, 5, 8}) {
    for (const char* spec : kSchemes) {
      PipelineConfig reference_config =
          parse_pipeline_config(std::string(spec) + ":chunk=512:fabric=threaded");
      AggregationPipeline reference(
          make_scheme_codec(spec, layout, world), reference_config);
      const auto ref = run_rounds(reference, world);

      PipelineConfig bucketed_config = parse_pipeline_config(
          std::string(spec) +
              ":buckets=layer:bucket=4096:workers=3:fabric=threaded",
          layout, world);
      AggregationPipeline bucketed(make_scheme_codec(spec, layout, world),
                                   bucketed_config);
      // Guard against a degenerate plan: bucket=4096 on this ~16 KB
      // layout must yield genuinely multi-bucket schedules, or the test
      // would silently stop exercising the bucketed collectives.
      ASSERT_NE(bucketed.bucket_plan(), nullptr);
      ASSERT_GT(bucketed.bucket_plan()->num_buckets(), 2u) << spec;
      const auto got = run_rounds(bucketed, world);
      EXPECT_TRUE(bit_identical(got.outputs, ref.outputs))
          << spec << " world=" << world;
      // Chunking is traffic-transparent too: every (step, chunk) hop
      // carries an intersection of the same block partition, so per-rank
      // payload bytes match the size-chunked reference exactly.
      ASSERT_EQ(got.wire.size(), ref.wire.size());
      for (std::size_t r = 0; r < got.wire.size(); ++r) {
        EXPECT_EQ(got.wire[r].sent, ref.wire[r].sent)
            << spec << " world=" << world << " round " << r;
        EXPECT_EQ(got.wire[r].received, ref.wire[r].received)
            << spec << " world=" << world << " round " << r;
      }

      // Same chunk plan => same traffic: rerun the reference with the
      // bucketed plan but a single thread to compare meters directly.
      PipelineConfig single = bucketed_config;
      single.encode_workers = 1;
      AggregationPipeline bucketed_serial(
          make_scheme_codec(spec, layout, world), single);
      const auto serial = run_rounds(bucketed_serial, world);
      EXPECT_TRUE(bit_identical(got.outputs, serial.outputs))
          << spec << " world=" << world;
      ASSERT_EQ(got.wire.size(), serial.wire.size());
      for (std::size_t r = 0; r < got.wire.size(); ++r) {
        EXPECT_EQ(got.wire[r].sent, serial.wire[r].sent)
            << spec << " world=" << world << " round " << r;
        EXPECT_EQ(got.wire[r].received, serial.wire[r].received)
            << spec << " world=" << world << " round " << r;
      }
    }
  }
}

TEST(SchedPipeline, BucketedMultiWorkerMatchesOnSocketFabric) {
  // Socket fabric: every aggregate() forks real processes; the child
  // ranks rebuild their own encode pools post-fork. World sizes kept
  // small — each (scheme, world) pair is a full multi-process mesh.
  const ModelLayout layout = test_layout();
  const std::size_t d = layout.total_size();
  for (int world : {2, 4}) {
    for (const char* spec : kSchemes) {
      auto reference =
          make_compressor(std::string(spec) + ":chunk=512", layout, world);
      const auto ref = run_rounds(*reference, d, world);

      auto bucketed = make_compressor(
          std::string(spec) +
              ":buckets=layer:bucket=2048:workers=2:fabric=socket",
          layout, world);
      const auto got = run_rounds(*bucketed, d, world);
      EXPECT_TRUE(bit_identical(got.outputs, ref.outputs))
          << spec << " world=" << world;
    }
  }
}

TEST(SchedPipeline, WorkerPoolAloneIsValueTransparent) {
  // workers>1 without buckets (plain size chunks) must also be
  // bit-identical — the pool is orthogonal to the plan.
  const ModelLayout layout = test_layout();
  const std::size_t d = layout.total_size();
  for (const char* spec : kSchemes) {
    auto reference =
        make_compressor(std::string(spec) + ":chunk=256", layout, 4);
    auto pooled = make_compressor(
        std::string(spec) + ":chunk=256:workers=4", layout, 4);
    const auto ref = run_rounds(*reference, d, 4);
    const auto got = run_rounds(*pooled, d, 4);
    EXPECT_TRUE(bit_identical(got.outputs, ref.outputs)) << spec;
  }
}

TEST(SchedPipeline, AutotunedSpecRunsAndMatches) {
  // autotune resolves to concrete sizes inside the factory; values stay
  // bit-identical to the monolithic run.
  const ModelLayout layout = test_layout();
  const std::size_t d = layout.total_size();
  auto mono = make_compressor("topkc:b=8", layout, 4);
  auto tuned =
      make_compressor("topkc:b=8:buckets=layer:workers=2:autotune", layout, 4);
  const auto ref = run_rounds(*mono, d, 4);
  const auto got = run_rounds(*tuned, d, 4);
  EXPECT_TRUE(bit_identical(got.outputs, ref.outputs));
}

// A codec whose encode fails for one worker: the overlapped threaded
// path must fail the round loudly (Fabric::abort unblocks peers already
// inside the collective) instead of deadlocking.
class FailingEncodeCodec final : public SchemeCodec {
 public:
  FailingEncodeCodec(std::size_t d, int n, int failing_worker)
      : d_(d), n_(n), failing_worker_(failing_worker),
        op_(comm::make_fp32_sum()) {}

  std::string name() const override { return "FailingEncode"; }
  AggregationPath path() const override {
    return AggregationPath::kAllReduce;
  }
  int world_size() const override { return n_; }
  std::size_t dimension() const override { return d_; }

  class Round final : public CodecRound {
   public:
    Round(const FailingEncodeCodec& codec,
          std::span<const std::span<const float>> grads)
        : codec_(codec), grads_(grads) {}

    bool next_stage(WireStage& stage) override {
      if (done_) return false;
      done_ = true;
      stage = WireStage{};
      stage.name = "failing-values";
      stage.op = codec_.op_.get();
      return true;
    }
    ByteBuffer encode(int worker) override {
      if (worker == codec_.failing_worker_) {
        throw Error("synthetic encode failure");
      }
      ByteBuffer buf;
      ByteWriter w(buf);
      w.put_span<float>(grads_[static_cast<std::size_t>(worker)]);
      return buf;
    }
    void absorb_reduced(const ByteBuffer& reduced) override {
      reduced_ = reduced;
    }
    void finish(std::span<float> out, RoundStats& /*stats*/) override {
      std::memcpy(out.data(), reduced_.data(), out.size() * sizeof(float));
    }

   private:
    const FailingEncodeCodec& codec_;
    std::span<const std::span<const float>> grads_;
    bool done_ = false;
    ByteBuffer reduced_;
  };

  std::unique_ptr<CodecRound> begin_round(
      std::span<const std::span<const float>> grads,
      std::uint64_t /*round*/) override {
    return std::make_unique<Round>(*this, grads);
  }
  void reset() override {}

 private:
  friend class Round;
  std::size_t d_;
  int n_;
  int failing_worker_;
  std::unique_ptr<comm::ReduceOp> op_;
};

TEST(SchedPipeline, EncodeFailureFailsLoudlyOnOverlappedFabric) {
  // Worker 3's encode throws while ranks 0-2 are already exchanging hops;
  // the fabric abort must surface an exception (any rank's) rather than
  // deadlock in recv.
  const std::size_t d = 256;
  const int world = 4;
  PipelineConfig config;
  config.threaded_fabric = true;
  config.backend = PipelineBackend::kThreadedFabric;
  config.chunk_bytes = 64;
  config.encode_workers = 2;
  AggregationPipeline pipeline(
      std::make_unique<FailingEncodeCodec>(d, world, 3), config);
  const auto grads = random_grads(d, world, 77);
  const auto views = views_of(grads);
  std::vector<float> out(d);
  EXPECT_THROW(pipeline.aggregate(
                   std::span<const std::span<const float>>(views), out, 0),
               std::exception);
}

TEST(SchedPipeline, LayerBucketsRequireACoveringLayout) {
  // parse_pipeline_config without a layout leaves the config layout
  // empty; constructing a pipeline from it must fail loudly rather than
  // plan buckets over nothing.
  const ModelLayout layout = test_layout();
  PipelineConfig config = parse_pipeline_config("fp16:buckets=layer");
  EXPECT_THROW(AggregationPipeline(make_scheme_codec("fp16", layout, 2),
                                   config),
               Error);
}

}  // namespace
}  // namespace gcs::core
