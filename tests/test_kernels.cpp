// Tests for src/kernels: the swappable single-pass codec kernel backends.
//
// The hard invariant is bit-identity: the AVX2 backend must produce the
// same bytes as the scalar reference for every kernel, and the fused
// kernel paths inside the codecs must produce the same wire bytes, EF
// residuals, and aggregates as the legacy multi-pass paths. These tests
// close the loop at three levels: per-kernel (randomized + exhaustive
// cross-backend checks), per-primitive (fused vs legacy composition), and
// per-scheme (whole rounds under both backends).
#include "kernels/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "comm/chunked_collectives.h"
#include "common/bytes.h"
#include "common/check.h"
#include "common/rng.h"
#include "core/aggregation_pipeline.h"
#include "core/codec.h"
#include "core/factory.h"
#include "core/synthetic_grad.h"
#include "numeric/half.h"
#include "numeric/precision.h"
#include "quant/quantize.h"
#include "quant/satint.h"
#include "sparse/topk.h"
#include "tensor/layout.h"

namespace gcs {
namespace {

using kernels::Backend;

/// Forces a kernel backend for the current scope; restores auto-dispatch.
class BackendGuard {
 public:
  explicit BackendGuard(const char* name) {
    kernels::force_backend_for_testing(name);
  }
  ~BackendGuard() { kernels::force_backend_for_testing(nullptr); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;
};

bool have_avx2() { return kernels::avx2_supported(); }

/// Input floats that stress every branch of the FP16 conversion: zeros,
/// denormals (both widths), NaN payloads, infinities, overflow, and
/// round-to-nearest-even boundary patterns.
std::vector<float> special_floats() {
  std::vector<float> v = {
      0.0f, -0.0f, 1.0f, -1.0f, 65504.0f, -65504.0f, 65520.0f, 65536.0f,
      1e-8f, -1e-8f, 5.96e-8f, 6.1e-5f, 6.097e-5f, 0.5f, 2.0f / 3.0f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::denorm_min(),
      -std::numeric_limits<float>::denorm_min(),
      std::numeric_limits<float>::max(),
      std::numeric_limits<float>::lowest(),
  };
  // Signaling-NaN-adjacent and denormal bit patterns.
  for (std::uint32_t bits : {0x7F800001u, 0xFF800001u, 0x7FC00001u,
                             0x00000001u, 0x807FFFFFu, 0x00800000u,
                             0x387FC000u, 0x387FE000u, 0x33000000u}) {
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    v.push_back(f);
  }
  return v;
}

TEST(Kernels, BackendNamesAndDispatch) {
  EXPECT_STREQ(kernels::scalar().name, "scalar");
  {
    BackendGuard g("scalar");
    EXPECT_STREQ(kernels::backend_name(), "scalar");
  }
  if (have_avx2()) {
    BackendGuard g("avx2");
    EXPECT_STREQ(kernels::backend_name(), "avx2");
  }
  EXPECT_THROW(kernels::force_backend_for_testing("neon"), Error);
}

TEST(Kernels, Fp16ToFp32CrossBackendExhaustive) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  // Every possible half bit pattern, including every NaN payload.
  std::vector<std::uint16_t> bits(1u << 16);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = static_cast<std::uint16_t>(i);
  }
  std::vector<float> ref(bits.size()), got(bits.size());
  kernels::scalar().fp16_to_fp32(bits.data(), bits.size(), ref.data());
  kernels::avx2().fp16_to_fp32(bits.data(), bits.size(), got.data());
  EXPECT_EQ(std::memcmp(ref.data(), got.data(), ref.size() * sizeof(float)),
            0);
  // And the scalar kernel is literally the reference conversion.
  for (std::size_t i = 0; i < bits.size(); ++i) {
    const float direct = half_bits_to_float(bits[i]);
    ASSERT_EQ(std::memcmp(&ref[i], &direct, sizeof(float)), 0) << i;
  }
}

TEST(Kernels, Fp32ToFp16CrossBackendRandomAndSpecial) {
  std::vector<float> x = special_floats();
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    // Uniform bit patterns cover denormals, NaNs, and extreme exponents.
    const auto bits = rng.next_u32();
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    x.push_back(f);
  }
  std::vector<std::uint16_t> ref(x.size());
  kernels::scalar().fp32_to_fp16(x.data(), x.size(), ref.data());
  for (std::size_t i = 0; i < x.size(); ++i) {
    ASSERT_EQ(ref[i], float_to_half_bits(x[i])) << "i=" << i;
  }
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  std::vector<std::uint16_t> got(x.size());
  kernels::avx2().fp32_to_fp16(x.data(), x.size(), got.data());
  EXPECT_EQ(ref, got);
  // Runt lengths hit the scalar tail of the vectorized loop.
  for (std::size_t n = 1; n <= 17; ++n) {
    std::vector<std::uint16_t> a(n), b(n);
    kernels::scalar().fp32_to_fp16(x.data(), n, a.data());
    kernels::avx2().fp32_to_fp16(x.data(), n, b.data());
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(Kernels, GatherFp16CrossBackend) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(11);
  std::vector<float> x = special_floats();
  for (int i = 0; i < 5000; ++i) {
    x.push_back(static_cast<float>(rng.next_gaussian()));
  }
  for (std::size_t n : {1u, 7u, 8u, 33u, 1000u}) {
    std::vector<std::uint32_t> idx(n);
    for (auto& v : idx) {
      v = static_cast<std::uint32_t>(rng.next_u64() % x.size());
    }
    std::vector<std::uint16_t> a(n), b(n);
    kernels::scalar().gather_fp32_to_fp16(x.data(), idx.data(), n, a.data());
    kernels::avx2().gather_fp32_to_fp16(x.data(), idx.data(), n, b.data());
    EXPECT_EQ(a, b) << "n=" << n;
  }
}

TEST(Kernels, FwhtLevelCrossBackend) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(13);
  for (std::size_t n : {2u, 8u, 12u, 20u, 64u, 256u, 1024u}) {
    for (std::size_t h = 1; 2 * h <= n; h *= 2) {
      if (n % (2 * h) != 0) continue;
      std::vector<float> a(n), b(n);
      for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<float>(rng.next_gaussian());
      }
      // A NaN and a denormal must propagate identically (true add/sub in
      // the SIMD butterflies, no sign-trick shortcuts).
      if (n >= 8) {
        a[1] = std::numeric_limits<float>::quiet_NaN();
        a[5] = std::numeric_limits<float>::denorm_min();
      }
      b = a;
      kernels::scalar().fwht_level(a.data(), n, h);
      kernels::avx2().fwht_level(b.data(), n, h);
      ASSERT_EQ(std::memcmp(a.data(), b.data(), n * sizeof(float)), 0)
          << "n=" << n << " h=" << h;
    }
  }
}

TEST(Kernels, MulAbsCountCollectCrossBackend) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(17);
  for (std::size_t n : {1u, 5u, 8u, 100u, 1027u}) {
    std::vector<float> x(n), s(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(rng.next_gaussian());
      s[i] = rng.next_sign();
    }
    if (n >= 4) {
      x[0] = -0.0f;
      x[3] = std::numeric_limits<float>::quiet_NaN();
    }
    std::vector<float> a(n), b(n);
    kernels::scalar().mul(x.data(), s.data(), n, a.data());
    kernels::avx2().mul(x.data(), s.data(), n, b.data());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), n * sizeof(float)), 0);
    auto xa = x, xb = x;
    kernels::scalar().mul_inplace(xa.data(), s.data(), n);
    kernels::avx2().mul_inplace(xb.data(), s.data(), n);
    ASSERT_EQ(std::memcmp(xa.data(), xb.data(), n * sizeof(float)), 0);
    kernels::scalar().abs(x.data(), n, a.data());
    kernels::avx2().abs(x.data(), n, b.data());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), n * sizeof(float)), 0);
    const float t = 0.5f;
    EXPECT_EQ(kernels::scalar().count_gt(a.data(), n, t),
              kernels::avx2().count_gt(a.data(), n, t));
    std::vector<std::uint32_t> ia(n), ib(n);
    const auto ca = kernels::scalar().collect_ge(a.data(), n, t, ia.data());
    const auto cb = kernels::avx2().collect_ge(a.data(), n, t, ib.data());
    ASSERT_EQ(ca, cb);
    ia.resize(ca);
    ib.resize(cb);
    EXPECT_EQ(ia, ib);
  }
}

TEST(Kernels, AddCrossBackend) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(91);
  for (std::size_t n : {1u, 7u, 8u, 64u, 1029u}) {
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<float>(rng.next_gaussian());
      b[i] = static_cast<float>(rng.next_gaussian());
    }
    if (n >= 8) {
      a[1] = std::numeric_limits<float>::quiet_NaN();
      a[2] = std::numeric_limits<float>::infinity();
      b[2] = -std::numeric_limits<float>::infinity();  // inf + -inf = NaN
      a[5] = -0.0f;
      b[5] = -0.0f;  // -0 + -0 = -0, sign must survive
    }
    std::vector<float> ra(n), rb(n);
    kernels::scalar().add(a.data(), b.data(), n, ra.data());
    kernels::avx2().add(a.data(), b.data(), n, rb.data());
    ASSERT_EQ(std::memcmp(ra.data(), rb.data(), n * sizeof(float)), 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (std::isnan(a[i] + b[i])) continue;
      EXPECT_EQ(ra[i], a[i] + b[i]);
    }
  }
}

/// The sequential fold min_max is contractually pinned to.
void min_max_reference(const std::vector<float>& x, float* lo, float* hi) {
  float mn = x[0], mx = x[0];
  for (std::size_t i = 1; i < x.size(); ++i) {
    mn = std::min(mn, x[i]);
    mx = std::max(mx, x[i]);
  }
  *lo = mn;
  *hi = mx;
}

TEST(Kernels, MinMaxCrossBackendIncludingNanAndSignedZero) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  Rng rng(92);
  for (std::size_t n : {1u, 2u, 9u, 16u, 63u, 64u, 1031u}) {
    for (int variant = 0; variant < 4; ++variant) {
      std::vector<float> x(n);
      for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
      if (variant == 1) x[n / 2] = std::numeric_limits<float>::quiet_NaN();
      if (variant == 2) x[0] = std::numeric_limits<float>::quiet_NaN();
      if (variant == 3) {
        // Mixed-sign zeros at fold-order-sensitive spots: the result's
        // zero sign must match the sequential fold exactly.
        for (auto& v : x) v = 0.0f;
        if (n > 1) x[1] = -0.0f;
        if (n > 8) x[8] = -0.0f;
      }
      float ref_lo, ref_hi, s_lo, s_hi, v_lo, v_hi;
      min_max_reference(x, &ref_lo, &ref_hi);
      kernels::scalar().min_max(x.data(), n, &s_lo, &s_hi);
      kernels::avx2().min_max(x.data(), n, &v_lo, &v_hi);
      EXPECT_EQ(std::memcmp(&s_lo, &ref_lo, sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(&s_hi, &ref_hi, sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(&v_lo, &s_lo, sizeof(float)), 0);
      EXPECT_EQ(std::memcmp(&v_hi, &s_hi, sizeof(float)), 0);
    }
  }
}

/// Legacy three-pass THC level encode: stochastic levels, centered lanes,
/// saturating clamp, offset-binary packing. The fused kernel must emit
/// identical bytes.
ByteBuffer thc_encode_reference(std::span<const float> x,
                                std::span<const float> u, float lo, float hi,
                                unsigned q, unsigned b) {
  std::vector<std::int32_t> lanes(x.size());
  const std::int32_t offset = 1 << (q - 1);
  for (std::size_t i = 0; i < x.size(); ++i) {
    lanes[i] =
        static_cast<std::int32_t>(stochastic_level(x[i], lo, hi, q, u[i])) -
        offset;
  }
  sat_clamp_lanes(lanes, b);
  return pack_signed_lanes(lanes, b);
}

TEST(Kernels, ThcEncodeLanesMatchesLegacyComposition) {
  Rng rng(23);
  for (const auto [q, b] : std::vector<std::pair<unsigned, unsigned>>{
           {2, 2}, {4, 4}, {8, 8}, {2, 4}, {4, 8}, {2, 8}}) {
    for (std::size_t n : {8u, 16u, 120u, 1024u}) {
      ASSERT_EQ(n * b % 8, 0u);
      std::vector<float> x(n), u(n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = static_cast<float>(rng.next_gaussian());
        u[i] = rng.next_float();
      }
      float lo = x[0], hi = x[0];
      for (float v : x) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      for (const auto [rlo, rhi] :
           std::vector<std::pair<float, float>>{{lo, hi}, {lo, lo}}) {
        const ByteBuffer ref =
            thc_encode_reference(x, u, rlo, rhi, q, b);
        ByteBuffer got(ref.size());
        kernels::scalar().thc_encode_lanes(
            x.data(), u.data(), n, rlo, rhi, q, b,
            reinterpret_cast<std::uint8_t*>(got.data()));
        ASSERT_EQ(got, ref) << "scalar q=" << q << " b=" << b << " n=" << n;
        if (have_avx2()) {
          ByteBuffer got2(ref.size());
          kernels::avx2().thc_encode_lanes(
              x.data(), u.data(), n, rlo, rhi, q, b,
              reinterpret_cast<std::uint8_t*>(got2.data()));
          ASSERT_EQ(got2, ref) << "avx2 q=" << q << " b=" << b << " n=" << n;
        }
      }
    }
  }
}

TEST(Kernels, ThcDecodeLanesMatchesLegacyComposition) {
  Rng rng(29);
  for (const auto [q, b] : std::vector<std::pair<unsigned, unsigned>>{
           {2, 2}, {4, 4}, {8, 8}, {2, 4}, {4, 8}}) {
    for (std::size_t n : {8u, 16u, 120u, 1024u}) {
      for (unsigned workers : {1u, 2u, 8u}) {
        ByteBuffer wire(n * b / 8);
        for (auto& byte : wire) {
          byte = static_cast<std::byte>(rng.next_u64() & 0xFF);
        }
        const float lo = -0.75f, hi = 1.25f;
        const std::int32_t offset = 1 << (q - 1);
        const auto sums = unpack_signed_lanes(wire, n, b);
        std::vector<float> ref(n);
        for (std::size_t i = 0; i < n; ++i) {
          const std::int64_t level_sum =
              static_cast<std::int64_t>(sums[i]) +
              static_cast<std::int64_t>(workers) * offset;
          ref[i] =
              dequantize_level_sum(level_sum, workers, {lo, hi}, q);
        }
        std::vector<float> got(n);
        kernels::scalar().thc_decode_lanes(
            reinterpret_cast<const std::uint8_t*>(wire.data()), n, lo, hi,
            q, b, workers, got.data());
        ASSERT_EQ(
            std::memcmp(ref.data(), got.data(), n * sizeof(float)), 0)
            << "scalar q=" << q << " b=" << b;
        // Degenerate range: every coordinate decodes to lo * workers.
        std::vector<float> degen(n);
        kernels::scalar().thc_decode_lanes(
            reinterpret_cast<const std::uint8_t*>(wire.data()), n, lo, lo,
            q, b, workers, degen.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(degen[i], lo * static_cast<float>(workers));
        }
        if (have_avx2()) {
          std::vector<float> got2(n);
          kernels::avx2().thc_decode_lanes(
              reinterpret_cast<const std::uint8_t*>(wire.data()), n, lo,
              hi, q, b, workers, got2.data());
          ASSERT_EQ(
              std::memcmp(ref.data(), got2.data(), n * sizeof(float)), 0)
              << "avx2 q=" << q << " b=" << b;
        }
      }
    }
  }
}

TEST(Kernels, TopKThresholdSelectMatchesReferenceOnTies) {
  Rng rng(31);
  // Tie-heavy adversarial inputs: values drawn from a tiny set, so the
  // k-th magnitude has many duplicates and the lowest-index tie-break
  // rule decides the selection.
  const float palette[] = {0.0f, 1.0f, -1.0f, 2.0f, -2.0f, 0.5f};
  for (std::size_t d : {1u, 2u, 17u, 64u, 500u}) {
    std::vector<float> x(d);
    for (auto& v : x) v = palette[rng.next_u64() % 6];
    for (std::size_t k :
         {std::size_t{0}, std::size_t{1}, d / 2, d - 1, d, d + 3}) {
      EXPECT_EQ(top_k_indices(x, k), top_k_indices_reference(x, k))
          << "d=" << d << " k=" << k;
    }
  }
  // All-equal magnitudes: pure index tie-break.
  std::vector<float> flat(100, -3.0f);
  EXPECT_EQ(top_k_indices(flat, 10), top_k_indices_reference(flat, 10));
  // Mixed signs with equal magnitude.
  std::vector<float> pm(64);
  for (std::size_t i = 0; i < pm.size(); ++i) {
    pm[i] = (i % 2 != 0) ? 1.5f : -1.5f;
  }
  EXPECT_EQ(top_k_indices(pm, 7), top_k_indices_reference(pm, 7));
  // Radix-bucket collisions: distinct magnitudes sharing their top 16 bit
  // pattern (only low mantissa bits differ), so the histogram select must
  // rank within one crowded bucket to find the exact threshold.
  std::vector<float> crowded(256);
  for (std::size_t i = 0; i < crowded.size(); ++i) {
    const std::uint32_t bits =
        0x3FC00000u | static_cast<std::uint32_t>(rng.next_u64() & 0xFFFFu);
    crowded[i] = std::bit_cast<float>(bits) * ((i % 3 != 0) ? 1.0f : -1.0f);
  }
  for (std::size_t k : {std::size_t{1}, std::size_t{100}, std::size_t{255}}) {
    EXPECT_EQ(top_k_indices(crowded, k), top_k_indices_reference(crowded, k))
        << "crowded k=" << k;
  }
}

/// Drives one codec round stage by stage over the local reference
/// reductions, asserting at every stage that encode_range slices
/// concatenate to exactly the whole-payload encode.
void check_encode_range_concatenation(const std::string& spec,
                                      const ModelLayout& layout, int world,
                                      std::size_t* rangeable_stages) {
  auto codec = core::make_scheme_codec(spec, layout, world);
  const auto grads =
      core::seeded_worker_grads(layout.total_size(), world, 555, 1);
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  auto session = codec->begin_round(
      std::span<const std::span<const float>>(views), 1);
  core::WireStage stage;
  while (session->next_stage(stage)) {
    std::vector<ByteBuffer> payloads(static_cast<std::size_t>(world));
    for (int w = 0; w < world; ++w) {
      payloads[static_cast<std::size_t>(w)] = session->encode(w);
    }
    const std::size_t granularity =
        stage.op != nullptr ? stage.op->granularity() : 1;
    if (session->supports_encode_range()) {
      ++*rangeable_stages;
      for (int w = 0; w < world; ++w) {
        const ByteBuffer& ref = payloads[static_cast<std::size_t>(w)];
        ByteBuffer got(ref.size(), std::byte{0xEE});
        // Granularity-aligned splits of varying size, including runts.
        std::size_t pos = 0;
        std::size_t piece = granularity;
        while (pos < ref.size()) {
          const std::size_t len = std::min(ref.size() - pos, piece);
          session->encode_range(
              w, pos, std::span<std::byte>(got).subspan(pos, len));
          pos += len;
          piece = granularity * (1 + (piece / granularity) % 7);
        }
        ASSERT_EQ(got, ref) << spec << " stage " << stage.name
                            << " worker " << w;
      }
    }
    if (stage.route == core::AggregationPath::kAllGather) {
      session->absorb_gathered(payloads);
    } else {
      const auto chunks =
          comm::chunk_payload(payloads[0].size(), 4096, granularity);
      session->absorb_reduced(
          comm::local_chunked_ring_all_reduce(payloads, chunks, *stage.op));
    }
  }
  std::vector<float> out(layout.total_size());
  core::RoundStats stats;
  session->finish(out, stats);
}

TEST(Kernels, EncodeRangeConcatenationEqualsEncode) {
  const auto layout = make_transformer_like_layout(4096);
  std::size_t rangeable = 0;
  check_encode_range_concatenation("fp16", layout, 4, &rangeable);
  check_encode_range_concatenation("fp32", layout, 4, &rangeable);
  check_encode_range_concatenation("thc:q=4:b=4:sat:partial", layout, 4,
                                   &rangeable);
  check_encode_range_concatenation("topkc:b=8", layout, 4, &rangeable);
  // Dense fp32/fp16 (one stage each), THC levels, TopKC values must all
  // have taken the ranged path — the test is vacuous otherwise.
  EXPECT_GE(rangeable, 4u);
}

TEST(Kernels, EncodeRangeUnsupportedByDefaultThrows) {
  const auto layout = make_transformer_like_layout(4096);
  auto codec = core::make_scheme_codec("topk:b=8", layout, 2);
  const auto grads = core::seeded_worker_grads(layout.total_size(), 2, 1, 0);
  std::vector<std::span<const float>> views;
  for (const auto& g : grads) views.emplace_back(g.data(), g.size());
  auto session = codec->begin_round(
      std::span<const std::span<const float>>(views), 0);
  core::WireStage stage;
  ASSERT_TRUE(session->next_stage(stage));
  EXPECT_FALSE(session->supports_encode_range());
  ByteBuffer out(16);
  EXPECT_THROW(session->encode_range(0, 0, out), Error);
}

/// Runs `rounds` full aggregation rounds of one scheme from a fresh codec
/// under a forced kernel backend; returns outputs, EF residuals, and the
/// per-round payload/metadata byte counts (the wire fingerprint).
struct SchemeRun {
  std::vector<std::vector<float>> outputs;
  std::vector<std::vector<float>> ef;
  std::vector<std::size_t> payload_bytes, metadata_bytes;
};

SchemeRun run_scheme(const std::string& spec, const ModelLayout& layout,
                     int world, int rounds, const char* backend) {
  BackendGuard guard(backend);
  core::AggregationPipeline pipeline(
      core::make_scheme_codec(spec, layout, world),
      core::parse_pipeline_config(spec, layout, world));
  SchemeRun run;
  const std::size_t dim = layout.total_size();
  for (int r = 0; r < rounds; ++r) {
    const auto grads = core::seeded_worker_grads(
        dim, world, 777, static_cast<std::uint64_t>(r));
    std::vector<std::span<const float>> views;
    for (const auto& g : grads) views.emplace_back(g.data(), g.size());
    std::vector<float> out(dim);
    const core::RoundStats stats = pipeline.aggregate(
        std::span<const std::span<const float>>(views), out,
        static_cast<std::uint64_t>(r));
    run.outputs.push_back(std::move(out));
    run.payload_bytes.push_back(stats.payload_bytes);
    run.metadata_bytes.push_back(stats.metadata_bytes);
  }
  for (int w = 0; w < world; ++w) {
    const auto mem = pipeline.codec().ef_memory(w);
    run.ef.emplace_back(mem.begin(), mem.end());
  }
  return run;
}

TEST(Kernels, AllSchemesBitIdenticalAcrossBackends) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  const auto layout = make_transformer_like_layout(4096);
  for (const char* spec :
       {"fp16", "fp32", "topk:b=8", "topkc:b=8",
        "thc:q=4:b=4:sat:partial", "thc:q=4:b=8:full", "powersgd:r=2"}) {
    const SchemeRun s = run_scheme(spec, layout, 4, 3, "scalar");
    const SchemeRun a = run_scheme(spec, layout, 4, 3, "avx2");
    ASSERT_EQ(s.outputs.size(), a.outputs.size()) << spec;
    for (std::size_t r = 0; r < s.outputs.size(); ++r) {
      ASSERT_EQ(std::memcmp(s.outputs[r].data(), a.outputs[r].data(),
                            s.outputs[r].size() * sizeof(float)),
                0)
          << spec << " round " << r;
    }
    EXPECT_EQ(s.payload_bytes, a.payload_bytes) << spec;
    EXPECT_EQ(s.metadata_bytes, a.metadata_bytes) << spec;
    ASSERT_EQ(s.ef.size(), a.ef.size()) << spec;
    for (std::size_t w = 0; w < s.ef.size(); ++w) {
      ASSERT_EQ(s.ef[w].size(), a.ef[w].size()) << spec;
      ASSERT_EQ(std::memcmp(s.ef[w].data(), a.ef[w].data(),
                            s.ef[w].size() * sizeof(float)),
                0)
          << spec << " EF worker " << w;
    }
  }
}

TEST(Kernels, RuntDimensionsBitIdenticalAcrossBackends) {
  if (!have_avx2()) GTEST_SKIP() << "no AVX2 on this host";
  // Runt payloads exercise every scalar tail in the vectorized kernels.
  for (std::size_t d : {1u, 7u, 130u}) {
    const ModelLayout layout({{"l0", d, 1}});
    for (const char* spec : {"fp16", "thc:q=4:b=4:sat:partial"}) {
      const SchemeRun s = run_scheme(spec, layout, 2, 2, "scalar");
      const SchemeRun a = run_scheme(spec, layout, 2, 2, "avx2");
      for (std::size_t r = 0; r < s.outputs.size(); ++r) {
        ASSERT_EQ(std::memcmp(s.outputs[r].data(), a.outputs[r].data(),
                              s.outputs[r].size() * sizeof(float)),
                  0)
            << spec << " d=" << d << " round " << r;
      }
      EXPECT_EQ(s.payload_bytes, a.payload_bytes) << spec << " d=" << d;
    }
    if (d >= 2) {
      const ModelLayout layout2({{"l0", d, 1}});
      const SchemeRun s = run_scheme("topk:b=8", layout2, 2, 2, "scalar");
      const SchemeRun a = run_scheme("topk:b=8", layout2, 2, 2, "avx2");
      for (std::size_t r = 0; r < s.outputs.size(); ++r) {
        ASSERT_EQ(std::memcmp(s.outputs[r].data(), a.outputs[r].data(),
                              s.outputs[r].size() * sizeof(float)),
                  0)
            << "topk d=" << d;
      }
    }
  }
}

}  // namespace
}  // namespace gcs
