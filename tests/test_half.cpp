// Tests for numeric/half: bit-exact binary16 conversion semantics.
#include "numeric/half.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace gcs {
namespace {

TEST(Half, ExactSmallValues) {
  // Values exactly representable in binary16 must round-trip unchanged.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, 0.25f, -65504.0f,
                  65504.0f, 1.5f, 0.0999755859375f}) {
    EXPECT_EQ(half_bits_to_float(float_to_half_bits(v)), v) << v;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3C00);
  EXPECT_EQ(float_to_half_bits(-2.0f), 0xC000);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7BFF);
  // Smallest positive subnormal: 2^-24.
  EXPECT_EQ(float_to_half_bits(std::ldexp(1.0f, -24)), 0x0001);
  // Smallest normal: 2^-14.
  EXPECT_EQ(float_to_half_bits(std::ldexp(1.0f, -14)), 0x0400);
}

TEST(Half, OverflowToInfinity) {
  EXPECT_EQ(float_to_half_bits(70000.0f), 0x7C00);
  EXPECT_EQ(float_to_half_bits(-1e30f), 0xFC00);
  EXPECT_TRUE(std::isinf(half_bits_to_float(0x7C00)));
}

TEST(Half, InfinityAndNanPassThrough) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(float_to_half_bits(inf), 0x7C00);
  EXPECT_EQ(float_to_half_bits(-inf), 0xFC00);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const auto bits = float_to_half_bits(nan);
  EXPECT_TRUE(std::isnan(half_bits_to_float(bits)));
}

TEST(Half, UnderflowToZero) {
  EXPECT_EQ(float_to_half_bits(1e-12f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-1e-12f), 0x8000);
}

TEST(Half, SubnormalRoundTrip) {
  // All 1024 positive subnormal patterns decode/encode losslessly.
  for (std::uint16_t bits = 1; bits < 0x0400; ++bits) {
    const float v = half_bits_to_float(bits);
    EXPECT_EQ(float_to_half_bits(v), bits) << bits;
  }
}

TEST(Half, AllFiniteBitPatternsRoundTrip) {
  // Every finite half decodes to a float that encodes back to itself:
  // conversion is exact in that direction.
  for (std::uint32_t bits = 0; bits < 0x10000; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    if ((h & 0x7C00) == 0x7C00) continue;  // skip inf/NaN
    const float v = half_bits_to_float(h);
    EXPECT_EQ(float_to_half_bits(v), h) << std::hex << h;
  }
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and the next half (1+2^-10);
  // RNE keeps the even mantissa (1.0).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(float_to_half_bits(halfway), 0x3C00);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9: rounds to even
  // (mantissa 2).
  const float halfway2 = 1.0f + 3 * std::ldexp(1.0f, -11);
  EXPECT_EQ(float_to_half_bits(halfway2), 0x3C02);
  // Just above halfway rounds up.
  EXPECT_EQ(float_to_half_bits(std::nextafterf(halfway, 2.0f)), 0x3C01);
}

TEST(Half, RoundingErrorBounded) {
  // Relative error of one round-trip is at most 2^-11 for normal values.
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const float v =
        static_cast<float>(rng.next_gaussian()) * 100.0f + 0.01f;
    const float back = half_bits_to_float(float_to_half_bits(v));
    EXPECT_LE(std::fabs(back - v), std::fabs(v) * (1.0f / 2048.0f) + 1e-7f)
        << v;
  }
}

TEST(Half, MonotoneOnSamples) {
  // Encoding preserves order (sampled).
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    const float a = static_cast<float>(rng.next_gaussian()) * 10.0f;
    const float b = a + 0.25f;
    EXPECT_LE(half_bits_to_float(float_to_half_bits(a)),
              half_bits_to_float(float_to_half_bits(b)));
  }
}

TEST(Half, OperatorPlusRoundsPerOp) {
  const Half a(1.0f);
  const Half b(std::ldexp(1.0f, -12));  // too small to move 1.0 in fp16
  EXPECT_EQ((a + b).to_float(), 1.0f);
}

TEST(Half, SpanHelpers) {
  const std::vector<float> xs{0.1f, -0.2f, 3.0f};
  const auto hs = to_half(xs);
  const auto back = to_float(hs);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[2], 3.0f);
  std::vector<float> ys = xs;
  round_trip_half(ys);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_EQ(ys[i], back[i]);
  }
}

}  // namespace
}  // namespace gcs
