// Tests for train/mlp: numerical gradient check, loss sanity, learning.
#include "train/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "train/optimizer.h"

namespace gcs::train {
namespace {

Batch tiny_batch() {
  Batch b;
  b.batch = 3;
  b.features = 4;
  b.x = {0.5f, -1.0f, 0.2f, 0.9f,   //
         1.5f, 0.3f, -0.7f, 0.1f,   //
         -0.2f, 0.8f, 0.4f, -1.1f};
  b.y = {0, 2, 1};
  return b;
}

TEST(Mlp, LayoutMatchesDims) {
  MlpModel model({4, 8, 3}, 1);
  // w0 (8x4) + b0 (8) + w1 (3x8) + b1 (3).
  EXPECT_EQ(model.dimension(), 32u + 8u + 24u + 3u);
  EXPECT_EQ(model.layout().num_layers(), 4u);
}

TEST(Mlp, InitialLossNearUniform) {
  MlpModel model({4, 16, 3}, 2);
  const auto eval = model.evaluate(tiny_batch());
  // Softmax over 3 classes with random small weights: loss ~ ln(3).
  EXPECT_NEAR(eval.mean_loss, std::log(3.0), 0.5);
}

TEST(Mlp, PerplexityIsExpLoss) {
  EvalResult r;
  r.mean_loss = 1.0;
  EXPECT_NEAR(r.perplexity(), std::exp(1.0), 1e-12);
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  MlpModel model({4, 6, 3}, 3);
  const Batch batch = tiny_batch();
  std::vector<float> grad(model.dimension());
  model.forward_backward(batch, grad);

  Rng rng(4);
  const float eps = 1e-3f;
  // Spot-check 40 random parameters against central differences.
  for (int t = 0; t < 40; ++t) {
    const auto i = static_cast<std::size_t>(
        rng.next_below(model.dimension()));
    const float orig = model.params()[i];
    model.params()[i] = orig + eps;
    const double lp = model.evaluate(batch).mean_loss;
    model.params()[i] = orig - eps;
    const double lm = model.evaluate(batch).mean_loss;
    model.params()[i] = orig;
    const double numeric = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad[i], numeric, 5e-3 + 0.05 * std::fabs(numeric))
        << "param " << i;
  }
}

TEST(Mlp, SameSeedSameModel) {
  MlpModel a({4, 8, 2}, 7), b({4, 8, 2}, 7);
  EXPECT_TRUE(std::equal(a.params().begin(), a.params().end(),
                         b.params().begin()));
  MlpModel c({4, 8, 2}, 8);
  EXPECT_FALSE(std::equal(a.params().begin(), a.params().end(),
                          c.params().begin()));
}

TEST(Mlp, LearnsLinearlySeparableTask) {
  // Tiny task: class = argmax of first two features.
  MlpModel model({2, 16, 2}, 9);
  SgdMomentum opt(model.dimension(), 0.1, 0.9);
  Rng rng(10);
  Batch batch;
  batch.batch = 32;
  batch.features = 2;
  std::vector<float> grad(model.dimension());
  for (int step = 0; step < 200; ++step) {
    batch.x.resize(64);
    batch.y.resize(32);
    for (int s = 0; s < 32; ++s) {
      const float a = static_cast<float>(rng.next_gaussian());
      const float b = static_cast<float>(rng.next_gaussian());
      batch.x[2 * s] = a;
      batch.x[2 * s + 1] = b;
      batch.y[s] = a > b ? 0 : 1;
    }
    model.forward_backward(batch, grad);
    opt.step(model.params(), grad);
  }
  const auto eval = model.evaluate(batch);
  EXPECT_GT(eval.accuracy, 0.95);
}

TEST(Mlp, EvaluateAccuracyCountsArgmax) {
  MlpModel model({2, 2}, 11);
  // Force weights: logit0 = x0, logit1 = x1 (biases zero).
  auto params = model.params();
  std::fill(params.begin(), params.end(), 0.0f);
  params[0] = 1.0f;  // w0[0,0]
  params[3] = 1.0f;  // w0[1,1]
  Batch batch;
  batch.batch = 2;
  batch.features = 2;
  batch.x = {2.0f, 0.0f, 0.0f, 2.0f};
  batch.y = {0, 0};
  const auto eval = model.evaluate(batch);
  EXPECT_DOUBLE_EQ(eval.accuracy, 0.5);
}

TEST(Mlp, GradientIsMeanOverBatch) {
  // Duplicating every sample must leave the gradient unchanged.
  MlpModel model({4, 5, 3}, 12);
  const Batch batch = tiny_batch();
  Batch doubled = batch;
  doubled.batch = 6;
  doubled.x.insert(doubled.x.end(), batch.x.begin(), batch.x.end());
  doubled.y.insert(doubled.y.end(), batch.y.begin(), batch.y.end());
  std::vector<float> g1(model.dimension()), g2(model.dimension());
  model.forward_backward(batch, g1);
  model.forward_backward(doubled, g2);
  for (std::size_t i = 0; i < g1.size(); ++i) {
    EXPECT_NEAR(g1[i], g2[i], 1e-5f);
  }
}

}  // namespace
}  // namespace gcs::train
