// Tests for telemetry/flight_recorder: the bounded ring, the loadable
// post-mortem dump (including the in-flight partial round), dump-file
// writing with rate limiting, and the peer-failure process hook that
// net/socket_fabric fires on comm::PeerFailure.
#include "telemetry/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "measure/trace_merge.h"

namespace gcs::telemetry {
namespace {

namespace fs = std::filesystem;

measure::TraceSpan make_span(measure::Phase phase, double start_s,
                             double end_s) {
  measure::TraceSpan s;
  s.phase = phase;
  s.start_s = start_s;
  s.end_s = end_s;
  s.bytes = 32;
  return s;
}

/// Creates (and empties) a scratch directory under the test's cwd.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path("flight_test_tmp") / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::size_t json_files_in(const fs::path& dir) {
  std::size_t n = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().extension() == ".json") ++n;
  }
  return n;
}

TEST(FlightRecorder, RingStaysBoundedAndKeepsTheMostRecentRounds) {
  FlightRecorderOptions o;
  o.ring_rounds = 3;
  o.rank = 5;
  FlightRecorder fr(o);
  for (std::uint64_t r = 0; r < 7; ++r) {
    fr.recorder().record(make_span(measure::Phase::kEncode, 0.0, 1e-3));
    fr.commit_round(r, "test", "local");
  }

  EXPECT_EQ(fr.rounds_seen(), 7u);
  EXPECT_EQ(fr.ring_size(), 3u);

  // The dump carries exactly the retained rounds — the most recent ones.
  const measure::RankTrace loaded =
      measure::parse_rank_trace_json(fr.build_dump_json("test"));
  EXPECT_EQ(loaded.rank, 5);
  EXPECT_EQ(loaded.dump_reason, "test");
  ASSERT_EQ(loaded.traces.size(), 3u);
  std::vector<std::uint64_t> rounds;
  for (const measure::RoundTrace& t : loaded.traces) {
    rounds.push_back(t.round);
  }
  EXPECT_EQ(rounds, (std::vector<std::uint64_t>{4, 5, 6}));
}

TEST(FlightRecorder, DumpIncludesThePartialInFlightRound) {
  FlightRecorderOptions o;
  o.rank = 1;
  FlightRecorder fr(o);
  fr.recorder().record(make_span(measure::Phase::kEncode, 0.0, 1e-3));
  fr.commit_round(0, "test", "local");
  // A span recorded but never committed: the round that was in flight
  // when the process died. It must appear in the dump.
  fr.recorder().record(make_span(measure::Phase::kSend, 2e-3, 3e-3));

  const measure::RankTrace loaded =
      measure::parse_rank_trace_json(fr.build_dump_json("crash"));
  ASSERT_EQ(loaded.traces.size(), 2u);
  EXPECT_EQ(loaded.traces[0].scheme, "test");
  EXPECT_EQ(loaded.traces[1].scheme, "(in-flight)");
  ASSERT_EQ(loaded.traces[1].spans.size(), 1u);
  EXPECT_EQ(loaded.traces[1].spans[0].phase, measure::Phase::kSend);
}

TEST(FlightRecorder, DumpWritesLoadableFileAndRateLimits) {
  const fs::path dir = scratch_dir("rate_limit");
  FlightRecorderOptions o;
  o.rank = 2;
  o.dump_dir = dir.string();
  o.min_dump_interval_s = 3600.0;  // one dump per incident, period
  FlightRecorder fr(o);
  fr.recorder().record(make_span(measure::Phase::kEncode, 0.0, 1e-3));
  fr.commit_round(0, "test", "local");

  const std::string path = fr.dump("first");
  ASSERT_FALSE(path.empty());
  EXPECT_NE(path.find("gcs_flight.rank2."), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const measure::RankTrace loaded = measure::parse_rank_trace_json(body);
  EXPECT_EQ(loaded.rank, 2);
  EXPECT_EQ(loaded.dump_reason, "first");

  // Within the interval a second incident is swallowed: no new file.
  EXPECT_TRUE(fr.dump("second").empty());
  EXPECT_EQ(json_files_in(dir), 1u);
  fs::remove_all(dir.parent_path());
}

TEST(FlightRecorder, PeerFailureNotificationDumpsThroughProcessHooks) {
  const fs::path dir = scratch_dir("peer_failure");
  FlightRecorderOptions o;
  o.rank = 0;
  o.dump_dir = dir.string();
  o.min_dump_interval_s = 0.0;  // let every notification through
  FlightRecorder fr(o);
  fr.recorder().record(make_span(measure::Phase::kRecv, 0.0, 1e-3));

  // Unarmed: the hook is a no-op.
  notify_peer_failure(3);
  EXPECT_EQ(json_files_in(dir), 0u);

  FlightRecorder::arm_process_hooks(&fr);
  EXPECT_EQ(FlightRecorder::process_instance(), &fr);
  notify_peer_failure(3);
  ASSERT_EQ(json_files_in(dir), 1u);
  for (const auto& e : fs::directory_iterator(dir)) {
    std::ifstream in(e.path());
    std::string body((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const measure::RankTrace loaded = measure::parse_rank_trace_json(body);
    EXPECT_EQ(loaded.dump_reason, "peer_failure:rank3");
  }

  // Disarmed: silence again.
  FlightRecorder::arm_process_hooks(nullptr);
  notify_peer_failure(4);
  EXPECT_EQ(json_files_in(dir), 1u);
  fs::remove_all(dir.parent_path());
}

}  // namespace
}  // namespace gcs::telemetry
