// Tests for hadamard: orthonormality, involution, partial == block-wise,
// energy preservation, shared-randomness consistency.
#include "hadamard/hadamard.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "tensor/vecops.h"

namespace gcs {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.next_gaussian());
  return x;
}

TEST(Fwht, SizeMustBePowerOfTwo) {
  std::vector<float> x(6);
  EXPECT_THROW(fwht(x), std::logic_error);
}

TEST(Fwht, SizeTwoKnownValues) {
  std::vector<float> x{1.0f, 3.0f};
  fwht(x);
  const float s = 1.0f / std::sqrt(2.0f);
  EXPECT_NEAR(x[0], 4.0f * s, 1e-6);
  EXPECT_NEAR(x[1], -2.0f * s, 1e-6);
}

TEST(Fwht, IsInvolution) {
  auto x = random_vec(256, 1);
  const auto orig = x;
  fwht(x);
  fwht(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], orig[i], 1e-4f);
  }
}

TEST(Fwht, PreservesEnergy) {
  auto x = random_vec(1024, 2);
  const double before = squared_norm(x);
  fwht(x);
  EXPECT_NEAR(squared_norm(x), before, before * 1e-5);
}

TEST(Fwht, PartialPreservesEnergy) {
  auto x = random_vec(1024, 3);
  const double before = squared_norm(x);
  fwht(x, 4);
  EXPECT_NEAR(squared_norm(x), before, before * 1e-5);
}

TEST(Fwht, PartialEqualsIndependentBlockRotations) {
  // The paper's claim: stopping after l' iterations == splitting into
  // 2^l'-sized chunks and fully rotating each.
  const std::size_t n = 512;
  const unsigned l_partial = 5;  // blocks of 32
  auto x = random_vec(n, 4);
  auto blockwise = x;

  fwht(std::span<float>(x), l_partial);

  const std::size_t block = std::size_t{1} << l_partial;
  for (std::size_t off = 0; off < n; off += block) {
    fwht(std::span<float>(blockwise).subspan(off, block));
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[i], blockwise[i], 1e-4f) << i;
  }
}

TEST(Fwht, ZeroIterationsIsIdentity) {
  auto x = random_vec(64, 5);
  const auto orig = x;
  fwht(std::span<float>(x), 0);
  EXPECT_EQ(x, orig);
}

TEST(Fwht, ReducesDynamicRangeOfSpikes) {
  // A single spike spreads across the whole vector: max |x| drops by
  // ~sqrt(n) — the reason THC rotates before quantizing.
  std::vector<float> x(4096, 0.0f);
  x[17] = 64.0f;
  fwht(x);
  float mx = 0.0f;
  for (float v : x) mx = std::max(mx, std::fabs(v));
  EXPECT_NEAR(mx, 1.0f, 1e-4f);  // 64 / sqrt(4096)
}

TEST(RhtSigns, SharedRandomnessIsConsistent) {
  const auto a = rht_signs(128, 42, 7);
  const auto b = rht_signs(128, 42, 7);
  EXPECT_EQ(a, b);
  const auto c = rht_signs(128, 42, 8);
  EXPECT_NE(a, c);
}

TEST(RhtSigns, OnlyPlusMinusOne) {
  const auto s = rht_signs(1000, 1, 1);
  for (float v : s) EXPECT_TRUE(v == 1.0f || v == -1.0f);
}

TEST(FullIterations, Values) {
  EXPECT_EQ(full_iterations(1), 0u);
  EXPECT_EQ(full_iterations(2), 1u);
  EXPECT_EQ(full_iterations(4096), 12u);
}

TEST(PartialIterations, RespectsSharedMemory) {
  // 32 KB of floats = 8192 floats -> l' = 13.
  EXPECT_EQ(partial_iterations(1 << 20, 32 * 1024), 13u);
  // Budget larger than the vector: full transform.
  EXPECT_EQ(partial_iterations(256, 1 << 20), 8u);
  // Tiny budget still mixes at least one level.
  EXPECT_EQ(partial_iterations(256, 1), 1u);
}

class RhtRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(RhtRoundTripTest, InverseRecoversInput) {
  const auto [size, iters] = GetParam();
  RhtTransform rht(size, iters, 99);
  auto x = random_vec(size, size + iters);
  std::vector<float> rotated(rht.padded_size());
  std::vector<float> back(size);
  rht.forward(x, rotated, 5);
  rht.inverse(rotated, back, 5);
  for (std::size_t i = 0; i < size; ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-3f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndIters, RhtRoundTripTest,
    ::testing::Values(std::make_tuple(std::size_t{64}, 0u),
                      std::make_tuple(std::size_t{100}, 0u),  // padded
                      std::make_tuple(std::size_t{1000}, 4u),
                      std::make_tuple(std::size_t{4096}, 6u),
                      std::make_tuple(std::size_t{1}, 0u)));

TEST(Rht, ForwardIsLinearAcrossWorkers) {
  // Sum of rotations == rotation of sum (same round => same signs); this
  // is what makes quantized aggregation decodable after all-reduce.
  const std::size_t n = 300;
  RhtTransform rht(n, 5, 7);
  auto a = random_vec(n, 10);
  auto b = random_vec(n, 11);
  std::vector<float> ra(rht.padded_size()), rb(rht.padded_size()),
      rsum(rht.padded_size());
  rht.forward(a, ra, 3);
  rht.forward(b, rb, 3);
  std::vector<float> sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = a[i] + b[i];
  rht.forward(sum, rsum, 3);
  for (std::size_t i = 0; i < rht.padded_size(); ++i) {
    EXPECT_NEAR(rsum[i], ra[i] + rb[i], 1e-3f);
  }
}

TEST(Rht, DifferentRoundsRotateDifferently) {
  const std::size_t n = 128;
  RhtTransform rht(n, 0, 7);
  auto x = random_vec(n, 12);
  std::vector<float> r1(rht.padded_size()), r2(rht.padded_size());
  rht.forward(x, r1, 1);
  rht.forward(x, r2, 2);
  EXPECT_NE(r1, r2);
}

}  // namespace
}  // namespace gcs
