// Tests for common/bits and common/bytes.
#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/bytes.h"
#include "common/check.h"

namespace gcs {
namespace {

TEST(Bits, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(1023));
}

TEST(Bits, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4096), 12u);
}

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4096), 12u);
  EXPECT_EQ(log2_ceil(4097), 13u);
}

TEST(Bits, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(Bits, PackedBytes) {
  EXPECT_EQ(packed_bytes(0, 4), 0u);
  EXPECT_EQ(packed_bytes(1, 4), 1u);
  EXPECT_EQ(packed_bytes(2, 4), 1u);
  EXPECT_EQ(packed_bytes(3, 4), 2u);
  EXPECT_EQ(packed_bytes(5, 2), 2u);
  EXPECT_EQ(packed_bytes(7, 8), 7u);
}

TEST(Bytes, ScalarRoundTrip) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.put<std::uint32_t>(0xDEADBEEF);
  w.put<float>(3.25f);
  w.put<std::uint16_t>(77);
  ByteReader r(buf);
  EXPECT_EQ(r.get<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.get<float>(), 3.25f);
  EXPECT_EQ(r.get<std::uint16_t>(), 77);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, SpanRoundTrip) {
  ByteBuffer buf;
  ByteWriter w(buf);
  const std::vector<float> values{1.0f, -2.0f, 0.5f};
  w.put_span<float>(values);
  ByteReader r(buf);
  const auto back = r.get_span<float>(3);
  EXPECT_EQ(std::vector<float>(back.begin(), back.end()), values);
}

TEST(Bytes, TruncatedPayloadThrows) {
  ByteBuffer buf(3);
  ByteReader r(buf);
  EXPECT_THROW(r.get<std::uint32_t>(), Error);
}

TEST(Bytes, TruncatedSpanThrows) {
  ByteBuffer buf(7);
  ByteReader r(buf);
  EXPECT_THROW(r.get_span<float>(2), Error);
}

TEST(Bytes, RemainingTracksPosition) {
  ByteBuffer buf(10);
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 10u);
  (void)r.get<std::uint32_t>();
  EXPECT_EQ(r.remaining(), 6u);
}

TEST(Check, ThrowsLogicError) {
  EXPECT_THROW(GCS_CHECK(1 == 2), std::logic_error);
  EXPECT_NO_THROW(GCS_CHECK(1 == 1));
}

TEST(Check, MessageIncluded) {
  try {
    GCS_CHECK_MSG(false, "context " << 42);
    FAIL();
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace gcs
