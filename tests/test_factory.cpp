// Tests for core/factory: the spec grammar and error handling.
#include "core/factory.h"

#include <gtest/gtest.h>

#include "common/check.h"

namespace gcs::core {
namespace {

ModelLayout layout() { return make_transformer_like_layout(1 << 14); }

TEST(Factory, Baselines) {
  const auto l = layout();
  EXPECT_EQ(make_compressor("fp16", l, 4)->name(), "Baseline FP16");
  EXPECT_EQ(make_compressor("fp32", l, 4)->name(), "Baseline FP32");
}

TEST(Factory, TopKByBits) {
  const auto l = layout();
  auto c = make_compressor("topk:b=8", l, 4);
  EXPECT_EQ(c->name(), "TopK");
  EXPECT_EQ(c->path(), AggregationPath::kAllGather);
}

TEST(Factory, TopKByK) {
  const auto l = layout();
  EXPECT_NO_THROW(make_compressor("topk:k=100", l, 2));
}

TEST(Factory, TopKC) {
  const auto l = layout();
  auto c = make_compressor("topkc:b=2", l, 4);
  EXPECT_EQ(c->name(), "TopKC");
  EXPECT_EQ(c->path(), AggregationPath::kAllReduce);
  auto p = make_compressor("topkc:b=2:perm", l, 4);
  EXPECT_EQ(p->name(), "TopKC Permutation");
}

TEST(Factory, ThcVariants) {
  const auto l = layout();
  auto sat = make_compressor("thc:q=4:b=4:sat:partial", l, 4);
  EXPECT_NE(sat->name().find("Sat"), std::string::npos);
  auto wide = make_compressor("thc:q=4:b=8:full", l, 4);
  EXPECT_NE(wide->name().find("BL"), std::string::npos);
  EXPECT_NE(wide->name().find("full"), std::string::npos);
  auto norot = make_compressor("thc:q=2:b=2:norot", l, 4);
  EXPECT_NE(norot->name().find("no-rotation"), std::string::npos);
}

TEST(Factory, PowerSgd) {
  const auto l = layout();
  auto c = make_compressor("powersgd:r=16", l, 4);
  EXPECT_EQ(c->name(), "PowerSGD-16");
}

TEST(Factory, WorldSizePropagates) {
  const auto l = layout();
  EXPECT_EQ(make_compressor("fp16", l, 7)->world_size(), 7);
}

TEST(Factory, UnknownKindThrows) {
  const auto l = layout();
  EXPECT_THROW(make_compressor("zipzap", l, 4), Error);
}

TEST(Factory, EmptySpecThrows) {
  const auto l = layout();
  EXPECT_THROW(make_compressor("", l, 4), Error);
}

TEST(Factory, UnknownOptionOrFlagThrows) {
  // The contract: a typo must not silently run a different experiment —
  // including the shared pipeline knobs (chunk=, fabric).
  const ModelLayout l({LayerSpec{"x", 100, 1}});
  EXPECT_THROW(make_compressor("topkc:b=8:chunck=65536", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:fabrik", l, 4), Error);
  EXPECT_THROW(make_compressor("powersgd:rank=4", l, 4), Error);
  EXPECT_THROW(make_compressor("thc:q=4:b=4:saturate", l, 4), Error);
  // The real knobs still parse.
  EXPECT_NO_THROW(make_compressor("topkc:b=8:chunk=65536:fabric", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:tree:chunk=64", l, 4));
}

TEST(Factory, FabricOptionSelectsBackend) {
  const ModelLayout l({LayerSpec{"x", 100, 1}});
  EXPECT_NO_THROW(make_compressor("fp16:fabric=local", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:fabric=threaded", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:fabric=socket", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:fabric=socket:port=29500", l, 4));
  EXPECT_NO_THROW(make_compressor(
      "fp16:fabric=socket:port=29500:iface=127.0.0.1", l, 4));
  // parse_pipeline_config exposes the same parse for SPMD drivers.
  EXPECT_EQ(parse_pipeline_config("fp16:fabric=socket").effective_backend(),
            PipelineBackend::kSocketFabric);
  EXPECT_EQ(parse_pipeline_config("fp16:fabric").effective_backend(),
            PipelineBackend::kThreadedFabric);
  // An explicit fabric=<value> beats the legacy bare flag.
  EXPECT_EQ(
      parse_pipeline_config("fp16:fabric:fabric=local").effective_backend(),
      PipelineBackend::kLocalReference);
  EXPECT_EQ(
      parse_pipeline_config("fp16:fabric=socket:port=29500").socket_port,
      29500);
}

TEST(Factory, ElasticKnobsParseAndReject) {
  const ModelLayout l({LayerSpec{"x", 100, 1}});
  // The knobs parse with fabric=socket and land in the pipeline config.
  EXPECT_NO_THROW(make_compressor("fp16:fabric=socket:elastic=on", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:fabric=socket:elastic=off", l, 4));
  EXPECT_NO_THROW(
      make_compressor("fp16:fabric=socket:peer_timeout_ms=500", l, 4));
  EXPECT_TRUE(parse_pipeline_config("fp16:fabric=socket:elastic=on")
                  .elastic);
  EXPECT_FALSE(parse_pipeline_config("fp16:fabric=socket:elastic=off")
                   .elastic);
  EXPECT_FALSE(parse_pipeline_config("fp16:fabric=socket").elastic);
  EXPECT_EQ(parse_pipeline_config(
                "fp16:fabric=socket:elastic=on:peer_timeout_ms=1500")
                .peer_timeout_ms,
            1500);
  // Malformed values must not silently run a different experiment.
  EXPECT_THROW(make_compressor("fp16:fabric=socket:elastic=yes", l, 4),
               Error);
  EXPECT_THROW(make_compressor("fp16:fabric=socket:elastic=", l, 4), Error);
  EXPECT_THROW(
      make_compressor("fp16:fabric=socket:peer_timeout_ms=0", l, 4), Error);
  EXPECT_THROW(
      make_compressor("fp16:fabric=socket:peer_timeout_ms=-5", l, 4),
      Error);
  EXPECT_THROW(
      make_compressor("fp16:fabric=socket:peer_timeout_ms=abc", l, 4),
      Error);
  EXPECT_THROW(
      make_compressor("fp16:fabric=socket:peer_timeout_ms=1.5", l, 4),
      Error);
  // Socket-only knobs, like port=/iface=: elastic membership lives in
  // the socket transport, the in-process fabrics have none to lose.
  EXPECT_THROW(make_compressor("fp16:elastic=on", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:fabric=threaded:elastic=on", l, 4),
               Error);
  EXPECT_THROW(make_compressor("fp16:peer_timeout_ms=500", l, 4), Error);
  EXPECT_THROW(
      make_compressor("fp16:fabric=threaded:peer_timeout_ms=500", l, 4),
      Error);
  EXPECT_THROW(make_compressor("fp16:elastic=off", l, 4), Error);
}

TEST(Factory, SchemeCodecEntryValidatesPipelineKnobs) {
  // make_scheme_codec ignores the shared knobs (the caller drives its
  // own pipeline) but must still reject malformed ones — same no-silent-
  // typo contract as make_compressor.
  const ModelLayout l({LayerSpec{"x", 100, 1}});
  EXPECT_NO_THROW(make_scheme_codec("topkc:b=8:chunk=4096", l, 4));
  EXPECT_THROW(make_scheme_codec("topkc:b=8:fabric=bogus", l, 4), Error);
  EXPECT_THROW(make_scheme_codec("topkc:b=8:chunk=abc", l, 4), Error);
  EXPECT_THROW(make_scheme_codec("fp16:port=29500", l, 4), Error);
}

TEST(Factory, MalformedFabricValuesThrow) {
  // Same contract as the misspelled-option tests: a malformed transport
  // choice must not silently run a different experiment.
  const ModelLayout l({LayerSpec{"x", 100, 1}});
  EXPECT_THROW(make_compressor("fp16:fabric=sockets", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:fabric=bogus", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:fabric=", l, 4), Error);
  // port= bounds and form.
  EXPECT_THROW(make_compressor("fp16:fabric=socket:port=0", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:fabric=socket:port=70000", l, 4),
               Error);
  EXPECT_THROW(make_compressor("fp16:fabric=socket:port=abc", l, 4), Error);
  // port=/iface= are socket-only knobs.
  EXPECT_THROW(make_compressor("fp16:port=29500", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:fabric=threaded:port=29500", l, 4),
               Error);
  EXPECT_THROW(make_compressor("fp16:iface=127.0.0.1", l, 4), Error);
  // iface= needs a value and a TCP rendezvous to attach to.
  EXPECT_THROW(make_compressor("fp16:fabric=socket:iface=", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:fabric=socket:iface=127.0.0.1", l, 4),
               Error);
}

TEST(Factory, MalformedNumberThrows) {
  const auto l = layout();
  EXPECT_THROW(make_compressor("topkc:b=abc", l, 4), Error);
}

TEST(Factory, TopKWithoutSizeThrows) {
  const auto l = layout();
  EXPECT_THROW(make_compressor("topk", l, 4), Error);
}

TEST(Factory, SchedulerGrammarAccepts) {
  const ModelLayout l({LayerSpec{"a", 100, 1}, LayerSpec{"b", 60, 1}});
  EXPECT_NO_THROW(make_compressor("fp16:buckets=layer", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:buckets=size:chunk=64", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:buckets=layer:bucket=128", l, 4));
  EXPECT_NO_THROW(make_compressor("topkc:b=8:buckets=layer:workers=2", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:workers=3", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:autotune", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:autotune=1", l, 4));
  EXPECT_NO_THROW(make_compressor("fp16:autotune=0:chunk=64", l, 4));
  EXPECT_NO_THROW(
      make_compressor("fp16:buckets=layer:workers=2:autotune", l, 4));
  // The parsed knobs land in the pipeline config.
  const auto config = parse_pipeline_config(
      "fp16:buckets=layer:bucket=256:workers=2", l, 4);
  EXPECT_EQ(config.bucket_mode, sched::BucketMode::kLayerBuckets);
  EXPECT_EQ(config.bucket_bytes, 256u);
  EXPECT_EQ(config.encode_workers, 2);
  EXPECT_EQ(config.layout.total_size(), l.total_size());
}

TEST(Factory, SchedulerGrammarRejects) {
  // The no-silent-typo contract extends to the scheduler knobs: a bogus
  // bucket mode, a zero-width pool or contradictory autotuning must not
  // silently run a different schedule.
  const ModelLayout l({LayerSpec{"a", 100, 1}, LayerSpec{"b", 60, 1}});
  EXPECT_THROW(make_compressor("fp16:workers=0", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:workers=-2", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:workers=1.5", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:workers=abc", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:buckets=bogus", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:buckets=", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:buckets=Layer", l, 4), Error);
  // autotune picks the sizes itself; explicit sizes contradict it.
  EXPECT_THROW(make_compressor("fp16:autotune:chunk=65536", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:autotune=1:chunk=65536", l, 4), Error);
  EXPECT_THROW(
      make_compressor("fp16:buckets=layer:autotune:bucket=1024", l, 4),
      Error);
  EXPECT_THROW(make_compressor("fp16:autotune=2", l, 4), Error);
  // bucket= is a layer-bucket knob.
  EXPECT_THROW(make_compressor("fp16:bucket=1024", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:buckets=size:bucket=1024", l, 4),
               Error);
  EXPECT_THROW(make_compressor("fp16:buckets=layer:bucket=0", l, 4), Error);
  // Misspellings stay fatal.
  EXPECT_THROW(make_compressor("fp16:bucketz=layer", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:worker=2", l, 4), Error);
}

TEST(Factory, BackwardFracAcceptsInRangeFractions) {
  const ModelLayout l({LayerSpec{"a", 100, 1}, LayerSpec{"b", 60, 1}});
  EXPECT_NO_THROW(make_compressor("fp16:backward_frac=0.5", l, 4));
  EXPECT_NO_THROW(
      make_compressor("fp16:buckets=layer:backward_frac=0.8", l, 4));
  // Both factory entry points validate the knob (it is consumed by the
  // cost model's re-parse of the same spec, tested in test_sched.cpp).
  EXPECT_NO_THROW(parse_pipeline_config("fp16:backward_frac=0.71", l, 4));
}

TEST(Factory, BackwardFracRejectsOutOfRange) {
  // The fraction is a share of compute: 0 and 1 are degenerate (no
  // backward pass / no forward pass) and anything outside is a typo.
  const ModelLayout l({LayerSpec{"a", 100, 1}, LayerSpec{"b", 60, 1}});
  EXPECT_THROW(make_compressor("fp16:backward_frac=0", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:backward_frac=1", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:backward_frac=1.5", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:backward_frac=-0.3", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:backward_frac=abc", l, 4), Error);
  EXPECT_THROW(make_compressor("fp16:backward_frac=", l, 4), Error);
  // The misspelled knob stays fatal, as everywhere in the grammar.
  EXPECT_THROW(make_compressor("fp16:backwards_frac=0.5", l, 4), Error);
}

TEST(Factory, NoEfFlag) {
  // Spec parsing must accept the noef flag everywhere it is documented.
  const auto l = layout();
  EXPECT_NO_THROW(make_compressor("topk:b=2:noef", l, 4));
  EXPECT_NO_THROW(make_compressor("topkc:b=2:noef", l, 4));
  EXPECT_NO_THROW(make_compressor("powersgd:r=4:noef", l, 4));
}

}  // namespace
}  // namespace gcs::core
