// Tests for core/synthetic_grad and core/vnmse.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.h"
#include "core/synthetic_grad.h"
#include "core/vnmse.h"
#include "tensor/layout.h"

namespace gcs::core {
namespace {

SyntheticGradConfig small_config() {
  SyntheticGradConfig config;
  config.layout = make_transformer_like_layout(1 << 14);
  config.world_size = 4;
  return config;
}

TEST(SyntheticGrad, DeterministicPerRound) {
  SyntheticGradients source(small_config());
  std::vector<std::vector<float>> a, b;
  source.generate(3, a);
  source.generate(3, b);
  EXPECT_EQ(a, b);
  source.generate(4, b);
  EXPECT_NE(a, b);
}

TEST(SyntheticGrad, ShapesMatchLayout) {
  SyntheticGradients source(small_config());
  std::vector<std::vector<float>> grads;
  source.generate(0, grads);
  ASSERT_EQ(grads.size(), 4u);
  for (const auto& g : grads) EXPECT_EQ(g.size(), source.dimension());
}

TEST(SyntheticGrad, WorkersShareSignalButDiffer) {
  auto config = small_config();
  config.worker_correlation = 0.8;
  SyntheticGradients source(config);
  std::vector<std::vector<float>> grads;
  source.generate(0, grads);
  // Positive cross-worker correlation, but not identical.
  double dot01 = 0.0, n0 = 0.0, n1 = 0.0;
  for (std::size_t i = 0; i < grads[0].size(); ++i) {
    dot01 += static_cast<double>(grads[0][i]) * grads[1][i];
    n0 += static_cast<double>(grads[0][i]) * grads[0][i];
    n1 += static_cast<double>(grads[1][i]) * grads[1][i];
  }
  const double corr = dot01 / std::sqrt(n0 * n1);
  EXPECT_GT(corr, 0.5);
  EXPECT_LT(corr, 0.99);
}

TEST(SyntheticGrad, ZeroCorrelationDecorrelates) {
  auto config = small_config();
  config.worker_correlation = 0.0;
  SyntheticGradients source(config);
  std::vector<std::vector<float>> grads;
  source.generate(0, grads);
  double dot01 = 0.0, n0 = 0.0, n1 = 0.0;
  for (std::size_t i = 0; i < grads[0].size(); ++i) {
    dot01 += static_cast<double>(grads[0][i]) * grads[1][i];
    n0 += static_cast<double>(grads[0][i]) * grads[0][i];
    n1 += static_cast<double>(grads[1][i]) * grads[1][i];
  }
  EXPECT_LT(std::fabs(dot01 / std::sqrt(n0 * n1)), 0.1);
}

TEST(SyntheticGrad, LocalityProducesSmoothEnvelope) {
  // With high locality, neighbouring |g| are correlated; with zero
  // locality they are not. Compare lag-1 autocorrelation of |g|.
  auto high = small_config();
  high.locality = 0.98;
  auto low = small_config();
  low.locality = 0.0;
  auto autocorr = [](const std::vector<float>& g) {
    double m = 0.0;
    for (float v : g) m += std::fabs(v);
    m /= static_cast<double>(g.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i + 1 < g.size(); ++i) {
      num += (std::fabs(g[i]) - m) * (std::fabs(g[i + 1]) - m);
      den += (std::fabs(g[i]) - m) * (std::fabs(g[i]) - m);
    }
    return num / den;
  };
  std::vector<std::vector<float>> grads;
  SyntheticGradients(high).generate(0, grads);
  const double ac_high = autocorr(grads[0]);
  SyntheticGradients(low).generate(0, grads);
  const double ac_low = autocorr(grads[0]);
  EXPECT_GT(ac_high, 0.5);
  EXPECT_LT(ac_low, 0.2);
}

TEST(SyntheticGrad, HeavyTailEnergyConcentration) {
  // With tail_sigma ~ 1.6, the top 10% of coordinates should hold most of
  // the energy (the premise of sparsification).
  SyntheticGradients source(small_config());
  std::vector<std::vector<float>> grads;
  source.generate(0, grads);
  auto& g = grads[0];
  std::vector<double> energy(g.size());
  double total = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    energy[i] = static_cast<double>(g[i]) * g[i];
    total += energy[i];
  }
  std::sort(energy.rbegin(), energy.rend());
  double top = 0.0;
  for (std::size_t i = 0; i < energy.size() / 10; ++i) top += energy[i];
  EXPECT_GT(top / total, 0.7);
}

TEST(Vnmse, ZeroForExactSum) {
  std::vector<std::vector<float>> grads{{1.0f, 2.0f}, {3.0f, 4.0f}};
  std::vector<std::span<const float>> views;
  for (auto& g : grads) views.emplace_back(g.data(), g.size());
  const std::vector<float> exact{4.0f, 6.0f};
  EXPECT_DOUBLE_EQ(
      vnmse(exact, std::span<const std::span<const float>>(views)), 0.0);
}

TEST(Vnmse, NormalizedScale) {
  std::vector<std::vector<float>> grads{{2.0f, 0.0f}};
  std::vector<std::span<const float>> views;
  for (auto& g : grads) views.emplace_back(g.data(), g.size());
  const std::vector<float> est{1.0f, 0.0f};  // error 1, ref 4
  EXPECT_DOUBLE_EQ(
      vnmse(est, std::span<const std::span<const float>>(views)), 0.25);
}

TEST(MeasureVnmse, BaselineFp32IsEssentiallyExact) {
  SyntheticGradients source(small_config());
  BaselineConfig config;
  config.dimension = source.dimension();
  config.world_size = 4;
  config.comm_precision = Precision::kFp32;
  auto c = make_baseline(config);
  const auto report = measure_vnmse(*c, source, 3);
  EXPECT_LT(report.mean, 1e-10);
  EXPECT_EQ(report.rounds, 3);
  EXPECT_DOUBLE_EQ(report.mean_bits_per_coordinate, 32.0);
}

TEST(MeasureVnmse, Fp16SmallButNonzero) {
  SyntheticGradients source(small_config());
  BaselineConfig config;
  config.dimension = source.dimension();
  config.world_size = 4;
  config.comm_precision = Precision::kFp16;
  auto c = make_baseline(config);
  const auto report = measure_vnmse(*c, source, 3);
  EXPECT_GT(report.mean, 0.0);
  EXPECT_LT(report.mean, 1e-4);
}

}  // namespace
}  // namespace gcs::core
