// Tests for the health layer (src/health/ + DESIGN.md "Health layer"):
//   * detector math — a planted step-change is caught within a bounded
//     number of samples, a slow drift is caught eventually, and a noisy
//     stationary series across several seeds yields zero false
//     positives; hysteresis emits one detection per episode; warm-up
//     suppresses the initialization transient; direction gating;
//   * heartbeat lanes — identity by (name, peer), nested arming, dead
//     handles;
//   * the watchdog driven by a fake clock through poll_once() — stall
//     fires once per episode, names lane and peer, recovers on progress
//     or disarm, and a disarmed lane never fires;
//   * DetectorBank rollup state and telemetry emission;
//   * histogram_quantile estimation and the _quantile exposition lines;
//   * HealthMonitor's /health JSON document and status rollup.
//
// Everything here is clock-free: watchdog and monitor are driven through
// their poll_once()/tick() seams, never via their background threads.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "health/detectors.h"
#include "health/health_monitor.h"
#include "health/heartbeat.h"
#include "health/watchdog.h"
#include "telemetry/metrics.h"

namespace gcs::health {
namespace {

/// Restores the telemetry enable state on scope exit (process-global).
class EnabledGuard {
 public:
  explicit EnabledGuard(bool on) { telemetry::set_enabled(on); }
  ~EnabledGuard() { telemetry::set_enabled(false); }
};

/// Unique names per test: the lane and metric registries are append-only
/// for the process lifetime, so tests must not collide.
std::string unique_name(const std::string& stem) {
  static std::atomic<int> seq{0};
  return "test_health_" + stem + "_" + std::to_string(seq.fetch_add(1));
}

/// Deterministic noise: a tiny LCG shaped roughly gaussian (sum of four
/// uniforms, centred). No <random> so the sequences are stable across
/// libstdc++ versions.
class Noise {
 public:
  explicit Noise(std::uint64_t seed) : state_(seed * 2862933555777941757ull + 1)
  {}
  double uniform() {  // in [0, 1)
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state_ >> 11) / 9007199254740992.0;
  }
  double gaussian() {  // mean 0, sigma ~0.577
    return uniform() + uniform() + uniform() + uniform() - 2.0;
  }

 private:
  std::uint64_t state_;
};

// --------------------------------------------------------- detector math

TEST(CusumDetector, StepChangeCaughtWithinBoundedLatency) {
  for (std::uint64_t seed : {1ull, 7ull, 1234ull, 99991ull}) {
    Noise noise(seed);
    CusumDetector det({}, Direction::kHigh);
    // 50 baseline samples around 100 with sigma ~3.
    for (int i = 0; i < 50; ++i) {
      ASSERT_FALSE(det.observe(100.0 + 5.0 * noise.gaussian()))
          << "false positive on baseline, seed " << seed << " sample " << i;
    }
    // Planted step to 200: a 20-sigma shift must be caught within a
    // handful of samples (z is winsorized to z_clip per sample, so the
    // fastest possible trip is ceil(h / (z_clip - k)) = 3 samples).
    int latency = -1;
    for (int i = 0; i < 10; ++i) {
      if (det.observe(200.0 + 5.0 * noise.gaussian())) {
        latency = i;
        break;
      }
    }
    ASSERT_GE(latency, 0) << "step never detected, seed " << seed;
    EXPECT_LE(latency, 3) << "detection latency too high, seed " << seed;
    EXPECT_TRUE(det.tripped());
    EXPECT_EQ(det.detections(), 1u);
  }
}

TEST(CusumDetector, SlowDriftCaughtEventually) {
  for (std::uint64_t seed : {3ull, 42ull, 777ull}) {
    Noise noise(seed);
    CusumDetector det({}, Direction::kHigh);
    for (int i = 0; i < 60; ++i) {
      ASSERT_FALSE(det.observe(100.0 + 4.0 * noise.gaussian()));
    }
    // 1% of the base value per sample — slow enough that any single
    // sample looks almost normal, so only accumulation catches it.
    int latency = -1;
    for (int i = 0; i < 200; ++i) {
      const double x = 100.0 + 1.0 * i + 4.0 * noise.gaussian();
      if (det.observe(x)) {
        latency = i;
        break;
      }
    }
    ASSERT_GE(latency, 0) << "drift never detected, seed " << seed;
    EXPECT_LE(latency, 100) << "drift detection too slow, seed " << seed;
  }
}

TEST(CusumDetector, NoisyStationarySeriesNeverFires) {
  for (std::uint64_t seed : {2ull, 17ull, 2026ull, 31337ull, 555ull}) {
    Noise noise(seed);
    CusumDetector det({}, Direction::kBoth);
    for (int i = 0; i < 500; ++i) {
      ASSERT_FALSE(det.observe(50.0 + 10.0 * noise.gaussian()))
          << "false positive, seed " << seed << " sample " << i;
    }
    EXPECT_EQ(det.detections(), 0u);
  }
}

TEST(CusumDetector, HysteresisEmitsOneDetectionPerEpisode) {
  CusumDetector det({}, Direction::kHigh);
  for (int i = 0; i < 30; ++i) det.observe(100.0);
  // A persistent shift: exactly one detection while it lasts — the
  // baseline freezes while tripped, so the shift is never absorbed.
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (det.observe(300.0)) ++fired;
  }
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(det.tripped());
  EXPECT_EQ(det.detections(), 1u);
  // Recovery: scores decay below `rearm` once the signal returns, then a
  // second episode fires a second detection.
  for (int i = 0; i < 80 && det.tripped(); ++i) det.observe(100.0);
  EXPECT_FALSE(det.tripped()) << "detector never re-armed after recovery";
  fired = 0;
  for (int i = 0; i < 100; ++i) {
    if (det.observe(300.0)) ++fired;
  }
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(det.detections(), 2u);
}

TEST(CusumDetector, WarmupSuppressesInitializationTransient) {
  DetectorConfig config;
  config.warmup = 8;
  CusumDetector det(config, Direction::kBoth);
  // Wild swings inside the warm-up window must never fire.
  const double wild[] = {1.0, 1000.0, 2.0, 900.0, 5.0, 800.0, 1.0, 700.0};
  for (double x : wild) {
    EXPECT_FALSE(det.observe(x)) << "fired during warm-up on " << x;
  }
  EXPECT_EQ(det.detections(), 0u);
}

TEST(CusumDetector, DirectionGatesWhichDriftsFire) {
  // kLow (throughput): a surge does not fire...
  CusumDetector surged({}, Direction::kLow);
  for (int i = 0; i < 30; ++i) surged.observe(100.0);
  for (int i = 0; i < 5; ++i) surged.observe(500.0);  // surge: not anomalous
  EXPECT_EQ(surged.detections(), 0u);
  // ...but a collapse against a clean baseline does.
  CusumDetector low({}, Direction::kLow);
  for (int i = 0; i < 30; ++i) low.observe(100.0);
  bool fired = false;
  for (int i = 0; i < 5; ++i) fired = low.observe(10.0) || fired;
  EXPECT_TRUE(fired) << "collapse not caught by a kLow detector";

  // kHigh (latency): a drop is fine, a rise fires.
  CusumDetector high({}, Direction::kHigh);
  for (int i = 0; i < 30; ++i) high.observe(100.0);
  for (int i = 0; i < 5; ++i) high.observe(10.0);  // speedup: not anomalous
  EXPECT_EQ(high.detections(), 0u);
}

TEST(CusumDetector, EffectSizeGateSuppressesImmaterialShifts) {
  DetectorConfig gated;
  gated.min_effect = 2.0;  // a trip needs a >=3x move
  // A statistically loud but immaterial shift (100 -> 160 over a tight
  // baseline — huge z-scores, only 1.6x) must not fire...
  CusumDetector det(gated, Direction::kHigh);
  for (int i = 0; i < 30; ++i) det.observe(100.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(det.observe(160.0)) << "immaterial shift fired at " << i;
  }
  // ...and because the baseline never froze, it is absorbed as the new
  // normal (scores decay; the detector is not stuck saturated).
  EXPECT_NEAR(det.mean(), 160.0, 1.0);
  EXPECT_LT(det.score(), 8.0);
  // A material move (>=3x the adapted baseline) still fires.
  bool fired = false;
  for (int i = 0; i < 5; ++i) fired = det.observe(1000.0) || fired;
  EXPECT_TRUE(fired) << "material regression suppressed by the gate";

  // Same series with the gate off: the immaterial shift fires (this is
  // exactly the false positive the gate exists to kill).
  CusumDetector ungated({}, Direction::kHigh);
  for (int i = 0; i < 30; ++i) ungated.observe(100.0);
  bool ungated_fired = false;
  for (int i = 0; i < 50; ++i) {
    ungated_fired = ungated.observe(160.0) || ungated_fired;
  }
  EXPECT_TRUE(ungated_fired);
}

TEST(CusumDetector, WinsorizationIgnoresIsolatedOutliers) {
  // Real telemetry windows have heavy tails: one 5ms send in an
  // otherwise-microsecond stream. A single outlier window — however
  // extreme — must never fire; only persistence may.
  CusumDetector det({}, Direction::kHigh);
  for (int i = 0; i < 30; ++i) det.observe(100.0);
  EXPECT_FALSE(det.observe(100000.0)) << "one outlier tripped the CUSUM";
  // A couple of quiet samples later a second isolated outlier still
  // can't finish the job.
  det.observe(100.0);
  det.observe(100.0);
  det.observe(100.0);
  EXPECT_FALSE(det.observe(100000.0));
  EXPECT_EQ(det.detections(), 0u);
  // The same magnitude *sustained* fires within a handful of windows
  // (the isolated outliers above already widened the baseline, so this
  // takes a few more than the cold-start minimum of 3).
  bool fired = false;
  for (int i = 0; i < 6; ++i) fired = det.observe(100000.0) || fired;
  EXPECT_TRUE(fired) << "persistent regression not caught";
}

TEST(CusumDetector, SigmaFloorTamesConstantSeries) {
  // A perfectly constant series has variance zero; the sigma floor must
  // keep z finite and a tiny wobble must not fire.
  CusumDetector det({}, Direction::kBoth);
  for (int i = 0; i < 50; ++i) det.observe(100.0);
  EXPECT_GT(det.sigma(), 0.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(det.observe(100.0 + (i % 2 == 0 ? 0.5 : -0.5)));
  }
}

// ------------------------------------------------------- heartbeat lanes

TEST(HeartbeatLanes, IdentityIsNamePlusPeer) {
  const std::string name = unique_name("lane_identity");
  LaneHandle a = lane(name, 3);
  LaneHandle b = lane(name, 3);
  LaneHandle c = lane(name, 4);
  ASSERT_TRUE(a.live());
  ASSERT_TRUE(c.live());
  const std::uint64_t before = a.progress();
  b.beat();
  EXPECT_EQ(a.progress(), before + 1) << "same (name, peer) must share state";
  EXPECT_EQ(c.progress(), 0u) << "different peer must be a different lane";
}

TEST(HeartbeatLanes, DeadHandleIsSafe) {
  LaneHandle dead;
  EXPECT_FALSE(dead.live());
  dead.beat();
  dead.arm();
  dead.disarm();
  EXPECT_EQ(dead.progress(), 0u);
}

TEST(HeartbeatLanes, ArmingNests) {
  const std::string name = unique_name("lane_nesting");
  LaneHandle h = lane(name);
  h.arm();
  {
    ArmedScope inner(h);
    ArmedScope inner2(h);
  }
  // Still armed from the outer arm(): visible in the registry snapshot.
  bool armed = false;
  for (const auto& state : LaneRegistry::instance().snapshot()) {
    if (state.name == name) armed = state.armed;
  }
  EXPECT_TRUE(armed);
  h.disarm();
  for (const auto& state : LaneRegistry::instance().snapshot()) {
    if (state.name == name) armed = state.armed;
  }
  EXPECT_FALSE(armed);
}

// -------------------------------------------------- watchdog, fake clock

/// Stalls among `reports` for lane `name` (the lane registry is
/// process-global, so assertions filter to the test's own lanes).
std::vector<StallReport> for_lane(const std::vector<StallReport>& reports,
                                  const std::string& name) {
  std::vector<StallReport> mine;
  for (const auto& r : reports) {
    if (r.lane == name) mine.push_back(r);
  }
  return mine;
}

TEST(Watchdog, ArmedSilentLaneFiresOncePerEpisode) {
  const std::string name = unique_name("wd_stall");
  LaneHandle h = lane(name, 7);
  h.beat();
  h.arm();

  WatchdogConfig config;
  config.deadline_ms = 1000;
  config.flight_dump = false;
  Watchdog wd(config);  // no start(): the test is the clock

  EXPECT_TRUE(for_lane(wd.poll_once(0), name).empty());
  EXPECT_TRUE(for_lane(wd.poll_once(900), name).empty())
      << "fired before the deadline";

  const auto fired = for_lane(wd.poll_once(1100), name);
  ASSERT_EQ(fired.size(), 1u) << "armed silent lane must fire at deadline";
  EXPECT_EQ(fired[0].lane, name);
  EXPECT_EQ(fired[0].peer, 7);
  EXPECT_GE(fired[0].silent_ms, 1000u);
  EXPECT_EQ(fired[0].progress, h.progress());

  // Same episode: never re-fires, but stays listed as active.
  EXPECT_TRUE(for_lane(wd.poll_once(2000), name).empty());
  EXPECT_TRUE(wd.any_stalled());
  EXPECT_EQ(for_lane(wd.active_stalls(), name).size(), 1u);

  // Progress resumes: the stall clears, and a *new* silence is a new
  // episode with a new report.
  h.beat();
  EXPECT_TRUE(for_lane(wd.poll_once(2100), name).empty());
  EXPECT_TRUE(for_lane(wd.active_stalls(), name).empty());
  ASSERT_EQ(for_lane(wd.poll_once(3200), name).size(), 1u)
      << "a fresh stall after recovery is a new episode";
  h.disarm();
}

TEST(Watchdog, DisarmedLaneNeverFires) {
  const std::string name = unique_name("wd_idle");
  LaneHandle h = lane(name);
  h.beat();  // idle lane: beats once, never armed

  WatchdogConfig config;
  config.deadline_ms = 100;
  config.flight_dump = false;
  Watchdog wd(config);
  EXPECT_TRUE(for_lane(wd.poll_once(0), name).empty());
  EXPECT_TRUE(for_lane(wd.poll_once(100000), name).empty())
      << "a disarmed lane can legally sit still forever";
}

TEST(Watchdog, DisarmClearsAnActiveStall) {
  const std::string name = unique_name("wd_disarm");
  LaneHandle h = lane(name, 2);
  h.beat();
  h.arm();

  WatchdogConfig config;
  config.deadline_ms = 500;
  config.flight_dump = false;
  std::vector<StallReport> recovered;
  config.on_recover = [&](const StallReport& r) {
    if (r.lane == name) recovered.push_back(r);
  };
  Watchdog wd(config);
  wd.poll_once(0);
  ASSERT_EQ(for_lane(wd.poll_once(600), name).size(), 1u);

  // The waiter gives up (e.g. recv unwound via PeerFailure): disarm must
  // clear the stall without any progress.
  h.disarm();
  EXPECT_TRUE(for_lane(wd.poll_once(700), name).empty());
  EXPECT_TRUE(for_lane(wd.active_stalls(), name).empty());
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].peer, 2);
}

TEST(Watchdog, OnStallCallbackSeesTheReport) {
  const std::string name = unique_name("wd_callback");
  LaneHandle h = lane(name, 5);
  h.beat();
  h.arm();

  WatchdogConfig config;
  config.deadline_ms = 250;
  config.flight_dump = false;
  std::vector<StallReport> seen;
  config.on_stall = [&](const StallReport& r) {
    if (r.lane == name) seen.push_back(r);
  };
  Watchdog wd(config);
  wd.poll_once(0);
  wd.poll_once(300);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].lane, name);
  EXPECT_EQ(seen[0].peer, 5);
  h.disarm();
}

// ----------------------------------------------------------- DetectorBank

TEST(DetectorBank, RollsUpStateAndEmitsTelemetry) {
  EnabledGuard guard(true);
  DetectorBank bank;
  const std::string signal = unique_name("bank_signal");

  // Baseline, then a sustained step from round 31 — one detection,
  // stamped with the round the winsorized CUSUM finally tripped in.
  for (int i = 0; i < 30; ++i) {
    EXPECT_FALSE(bank.observe(signal, 2, /*local=*/true, Direction::kHigh,
                              100.0, static_cast<std::uint64_t>(i)));
  }
  EXPECT_FALSE(bank.any_active(/*local_only=*/false));
  std::uint64_t trip_round = 0;
  for (std::uint64_t r = 31; r <= 40 && trip_round == 0; ++r) {
    if (bank.observe(signal, 2, true, Direction::kHigh, 900.0, r)) {
      trip_round = r;
    }
  }
  ASSERT_GT(trip_round, 0u) << "sustained step never detected";
  EXPECT_EQ(bank.total_detections(), 1u);
  EXPECT_TRUE(bank.any_active(/*local_only=*/true));

  bool found = false;
  for (const auto& state : bank.snapshot()) {
    if (state.signal != signal) continue;
    found = true;
    EXPECT_EQ(state.peer, 2);
    EXPECT_TRUE(state.local);
    EXPECT_TRUE(state.active);
    EXPECT_EQ(state.detections, 1u);
    EXPECT_EQ(state.first_round, trip_round);
    EXPECT_EQ(state.last_round, trip_round);
    EXPECT_DOUBLE_EQ(state.last_value, 900.0);
    EXPECT_GT(state.baseline, 0.0);
  }
  ASSERT_TRUE(found);

  // gcs_anomaly_total{signal,peer} must be registered and at 1.
  const std::string want_labels =
      telemetry::label_kv("signal", signal) + "," +
      telemetry::label_kv("peer", 2);
  bool counter_found = false;
  for (const auto& m : telemetry::Registry::instance().snapshot()) {
    if (m.name == "gcs_anomaly_total" && m.labels == want_labels) {
      counter_found = true;
      EXPECT_EQ(m.counter_value, 1u);
    }
  }
  EXPECT_TRUE(counter_found);
}

TEST(DetectorBank, GlobalSignalsDoNotCountAsLocal) {
  DetectorBank bank;
  const std::string signal = unique_name("bank_global");
  for (int i = 0; i < 30; ++i) {
    bank.observe(signal, -1, /*local=*/false, Direction::kHigh, 10.0, i);
  }
  bool fired = false;
  for (std::uint64_t r = 30; r <= 40 && !fired; ++r) {
    fired = bank.observe(signal, -1, false, Direction::kHigh, 500.0, r);
  }
  ASSERT_TRUE(fired);
  EXPECT_TRUE(bank.any_active(/*local_only=*/false));
  EXPECT_FALSE(bank.any_active(/*local_only=*/true))
      << "a global anomaly must not read as a rank-local cause";
}

// ---------------------------------------------------- quantile estimation

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  telemetry::Histogram::Snapshot empty;
  EXPECT_EQ(telemetry::histogram_quantile(empty, 0.5), 0.0);
  EXPECT_EQ(telemetry::histogram_quantile(empty, 0.99), 0.0);
}

TEST(HistogramQuantile, SingleBucketStaysInsideItsBounds) {
  telemetry::Histogram::Snapshot snap;
  const std::size_t idx = telemetry::bucket_index(1000);
  snap.buckets[idx] = 100;
  snap.count = 100;
  snap.sum = 100 * 1000;
  for (double q : {0.5, 0.9, 0.99}) {
    const double est = telemetry::histogram_quantile(snap, q);
    EXPECT_GE(est, static_cast<double>(telemetry::bucket_lower_bound(idx)));
    EXPECT_LE(est, static_cast<double>(telemetry::bucket_upper_bound(idx)));
  }
}

TEST(HistogramQuantile, QuantilesAreMonotoneAcrossBuckets) {
  telemetry::Histogram::Snapshot snap;
  snap.buckets[telemetry::bucket_index(10)] = 50;
  snap.buckets[telemetry::bucket_index(1000)] = 40;
  snap.buckets[telemetry::bucket_index(100000)] = 10;
  snap.count = 100;
  const double p50 = telemetry::histogram_quantile(snap, 0.5);
  const double p90 = telemetry::histogram_quantile(snap, 0.9);
  const double p99 = telemetry::histogram_quantile(snap, 0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // p99 lands in the top bucket; p50 must not.
  EXPECT_GE(p99,
            static_cast<double>(telemetry::bucket_lower_bound(
                telemetry::bucket_index(100000))));
  EXPECT_LE(p50, static_cast<double>(telemetry::bucket_upper_bound(
                     telemetry::bucket_index(1000))));
}

TEST(HistogramQuantile, ExpositionRendersQuantileLines) {
  EnabledGuard guard(true);
  const std::string name = unique_name("quantile_metric");
  telemetry::HistogramHandle h = telemetry::histogram(name);
  for (int i = 0; i < 100; ++i) h.observe(1000);
  const std::string text =
      telemetry::to_prometheus_text(telemetry::Registry::instance().snapshot());
  EXPECT_NE(text.find(name + "_quantile{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find(name + "_quantile{quantile=\"0.9\"}"), std::string::npos);
  EXPECT_NE(text.find(name + "_quantile{quantile=\"0.99\"}"),
            std::string::npos);
}

// ----------------------------------------------------------- HealthMonitor

TEST(HealthMonitor, HealthJsonParsesAndCarriesIdentity) {
  EnabledGuard guard(true);
  HealthMonitorConfig config;
  config.rank = 3;
  HealthMonitor monitor(config);  // no start(): the test is the clock
  monitor.tick(0);
  monitor.tick(200);

  const std::string body = monitor.health_json();
  const json::Value doc = json::parse(body);
  ASSERT_TRUE(doc.is_object()) << body;
  EXPECT_EQ(doc.num_or("rank", -1), 3.0);
  EXPECT_EQ(doc.str_or("status", ""), "ok");
  EXPECT_EQ(doc.num_or("score", 0.0), 1.0);
  ASSERT_NE(doc.find("watchdog"), nullptr);
  EXPECT_EQ(doc.find("watchdog")->num_or("stalls_total", -1), 0.0);
  ASSERT_NE(doc.find("anomalies"), nullptr);
  EXPECT_TRUE(doc.find("anomalies")->is_array());
}

TEST(HealthMonitor, LocalAnomalyDegradesGlobalOnlyWarns) {
  HealthMonitorConfig config;
  config.rank = 0;
  HealthMonitor monitor(config);
  EXPECT_EQ(monitor.status(), "ok");
  EXPECT_EQ(monitor.score(), 1.0);

  // A tripped *global* detector only warns (one slow rank inflates
  // everyone's round latency — not this rank's fault).
  const std::string global_sig = unique_name("mon_global");
  for (int i = 0; i < 30; ++i) {
    monitor.bank().observe(global_sig, -1, false, Direction::kHigh, 10.0, i);
  }
  bool g_fired = false;
  for (std::uint64_t r = 30; r <= 40 && !g_fired; ++r) {
    g_fired =
        monitor.bank().observe(global_sig, -1, false, Direction::kHigh,
                               400.0, r);
  }
  ASSERT_TRUE(g_fired);
  EXPECT_EQ(monitor.status(), "warn");
  EXPECT_EQ(monitor.score(), 0.7);

  // A tripped *local* detector names this rank as the cause.
  const std::string local_sig = unique_name("mon_local");
  for (int i = 0; i < 30; ++i) {
    monitor.bank().observe(local_sig, 1, true, Direction::kHigh, 10.0, i);
  }
  bool l_fired = false;
  for (std::uint64_t r = 30; r <= 40 && !l_fired; ++r) {
    l_fired = monitor.bank().observe(local_sig, 1, true, Direction::kHigh,
                                     400.0, r);
  }
  ASSERT_TRUE(l_fired);
  EXPECT_EQ(monitor.status(), "degraded");
  EXPECT_EQ(monitor.score(), 0.3);
}

TEST(HealthMonitor, ActiveWatchdogStallMeansStalled) {
  const std::string name = unique_name("mon_stall");
  LaneHandle h = lane(name, 1);
  h.beat();
  h.arm();

  WatchdogConfig wd_config;
  wd_config.deadline_ms = 100;
  wd_config.flight_dump = false;
  Watchdog wd(wd_config);
  wd.poll_once(0);
  ASSERT_EQ(for_lane(wd.poll_once(200), name).size(), 1u);

  HealthMonitorConfig config;
  config.rank = 0;
  config.watchdog = &wd;
  HealthMonitor monitor(config);
  EXPECT_EQ(monitor.status(), "stalled");
  EXPECT_EQ(monitor.score(), 0.0);
  const json::Value doc = json::parse(monitor.health_json());
  const json::Value* watchdog = doc.find("watchdog");
  ASSERT_NE(watchdog, nullptr);
  const json::Value* active = watchdog->find("active");
  ASSERT_NE(active, nullptr);
  bool listed = false;
  for (const auto& stall : active->items) {
    if (stall.str_or("lane", "") == name) {
      listed = true;
      EXPECT_EQ(stall.num_or("peer", -1), 1.0);
    }
  }
  EXPECT_TRUE(listed) << "active stall missing from /health";

  h.disarm();
  wd.poll_once(300);  // recovery, so later suites see a quiet watchdog
  EXPECT_EQ(monitor.status(), "ok");
}

}  // namespace
}  // namespace gcs::health
