// Tests for sim/workload and sim/cost_model: layouts at paper scale and
// the qualitative orderings the paper's tables exhibit.
#include <gtest/gtest.h>

#include "common/check.h"
#include "sim/cost_model.h"
#include "sim/workload.h"

namespace gcs::sim {
namespace {

TEST(Workload, BertLargeParameterCount) {
  const auto w = make_bert_large_workload();
  // BERT-large MLM: ~336M parameters (paper rounds to 345M with the tied
  // decoder); accept the 330-350M band.
  EXPECT_GT(w.dimension(), 330'000'000u);
  EXPECT_LT(w.dimension(), 350'000'000u);
  EXPECT_EQ(w.name, "BERT");
}

TEST(Workload, Vgg19ParameterCount) {
  const auto w = make_vgg19_workload();
  // VGG19: 143.67M parameters.
  EXPECT_GT(w.dimension(), 143'000'000u);
  EXPECT_LT(w.dimension(), 144'500'000u);
}

TEST(Workload, Vgg19FcDominates) {
  const auto layout = vgg19_layout();
  std::size_t fc = 0;
  for (const auto& l : layout.layers()) {
    if (l.name.rfind("fc", 0) == 0) fc += l.size();
  }
  EXPECT_GT(static_cast<double>(fc) / layout.total_size(), 0.8);
}

TEST(CostModel, Table2Shape) {
  // FP16 comm beats FP32 comm; TF32 training beats FP32 training.
  const CostModel cost;
  for (const auto& w : {make_bert_large_workload(), make_vgg19_workload()}) {
    const double fp32_fp32 =
        cost.baseline_round(w, Precision::kFp32, Precision::kFp32).total();
    const double fp32_fp16 =
        cost.baseline_round(w, Precision::kFp32, Precision::kFp16).total();
    const double tf32_fp16 =
        cost.baseline_round(w, Precision::kTf32, Precision::kFp16).total();
    EXPECT_LT(fp32_fp16, fp32_fp32) << w.name;
    EXPECT_LT(tf32_fp16, fp32_fp16) << w.name;
  }
}

TEST(CostModel, Table2Magnitudes) {
  // Rounds/sec in the paper's ballpark (shape tolerance ~30%):
  // BERT FP32+FP32 ~ 2.36, FP16 comm ~ 3.17; VGG ~ 6.37 / 8.73.
  const CostModel cost;
  const auto bert = make_bert_large_workload();
  const double bert32 =
      cost.baseline_round(bert, Precision::kFp32, Precision::kFp32)
          .rounds_per_second();
  const double bert16 =
      cost.baseline_round(bert, Precision::kFp32, Precision::kFp16)
          .rounds_per_second();
  EXPECT_NEAR(bert32, 2.36, 0.8);
  EXPECT_NEAR(bert16, 3.17, 1.0);
  const auto vgg = make_vgg19_workload();
  const double vgg16 =
      cost.baseline_round(vgg, Precision::kFp32, Precision::kFp16)
          .rounds_per_second();
  EXPECT_NEAR(vgg16, 8.73, 2.5);
}

TEST(CostModel, Table5Shape_TopKCBeatsTopK) {
  const CostModel cost;
  for (const auto& w : {make_bert_large_workload(), make_vgg19_workload()}) {
    for (double b : {0.5, 2.0, 8.0}) {
      const double topk = cost.topk_round(w, b).total();
      const double topkc =
          cost.topkc_round(w, b, b < 1.0 ? 128 : 64).total();
      EXPECT_LT(topkc, topk) << w.name << " b=" << b;
    }
    // TopKC advantage grows with b (all-gather vs ring gap) — up to ~2x.
    const double ratio8 = cost.topk_round(w, 8.0).total() /
                          cost.topkc_round(w, 8.0, 64).total();
    EXPECT_GT(ratio8, 1.2);
    EXPECT_LT(ratio8, 3.0);
  }
}

TEST(CostModel, Table5Shape_ThroughputDecreasesWithBits) {
  const CostModel cost;
  const auto w = make_bert_large_workload();
  EXPECT_LT(cost.topk_round(w, 0.5).total(), cost.topk_round(w, 2.0).total());
  EXPECT_LT(cost.topk_round(w, 2.0).total(), cost.topk_round(w, 8.0).total());
  EXPECT_LT(cost.topkc_round(w, 0.5, 128).total(),
            cost.topkc_round(w, 8.0, 64).total());
}

TEST(CostModel, Table6Shape_TopKOverheadAroundTenPercent) {
  const CostModel cost;
  for (const auto& w : {make_bert_large_workload(), make_vgg19_workload()}) {
    for (double b : {0.5, 2.0, 8.0}) {
      const auto t = cost.topk_round(w, b);
      EXPECT_GT(t.compress_fraction(), 0.03) << w.name << " b=" << b;
      EXPECT_LT(t.compress_fraction(), 0.25) << w.name << " b=" << b;
    }
  }
}

TEST(CostModel, TopKCOverheadIsNegligible) {
  const CostModel cost;
  const auto w = make_bert_large_workload();
  const auto t = cost.topkc_round(w, 2.0, 64);
  EXPECT_LT(t.compress_fraction(), 0.05);
}

TEST(CostModel, Table8Shape_ThcOrdering) {
  const CostModel cost;
  for (const auto& w : {make_bert_large_workload(), make_vgg19_workload()}) {
    const unsigned full = cost.rotation_iters(w, "full");
    const unsigned partial = cost.rotation_iters(w, "partial");
    const unsigned none = cost.rotation_iters(w, "none");
    EXPECT_GT(full, partial);
    EXPECT_EQ(none, 0u);
    // Saturation (b=4) beats the wide baseline (b=8) at equal rotation.
    EXPECT_LT(cost.thc_round(w, 4, full).total(),
              cost.thc_round(w, 8, full).total());
    // Partial rotation beats full; none beats partial (pure compute).
    EXPECT_LT(cost.thc_round(w, 4, partial).total(),
              cost.thc_round(w, 4, full).total());
    EXPECT_LT(cost.thc_round(w, 4, none).total(),
              cost.thc_round(w, 4, partial).total());
    // b=2 beats b=4.
    EXPECT_LT(cost.thc_round(w, 2, partial).total(),
              cost.thc_round(w, 4, partial).total());
  }
}

TEST(CostModel, Table9Shape_PowerSgdRankCost) {
  const CostModel cost;
  for (const auto& w : {make_bert_large_workload(), make_vgg19_workload()}) {
    double prev = 0.0;
    for (std::size_t r : {1u, 4u, 16u, 64u}) {
      const double t = cost.powersgd_round(w, r).total();
      EXPECT_GT(t, prev) << w.name << " r=" << r;
      prev = t;
    }
    // r=64 costs roughly 1.5-3x of r=1 (the paper sees ~1.8-1.9x).
    const double ratio = cost.powersgd_round(w, 64).total() /
                         cost.powersgd_round(w, 1).total();
    EXPECT_GT(ratio, 1.3) << w.name;
    EXPECT_LT(ratio, 4.0) << w.name;
  }
}

TEST(CostModel, PowerSgdBitsScaleWithRank) {
  const CostModel cost;
  const auto w = make_bert_large_workload();
  const double b1 = cost.powersgd_bits(w, 1);
  const double b64 = cost.powersgd_bits(w, 64);
  EXPECT_LT(b1, 0.5);
  EXPECT_GT(b64, b1 * 10);
  EXPECT_LT(b64, 16.0);  // far below FP16
}

TEST(CostModel, PowerSgdOrthoDominatesAtHighRank) {
  // The paper profiles orthogonalization at ~40-47% of round time, r=64.
  const CostModel cost;
  const auto w = make_bert_large_workload();
  const auto t = cost.powersgd_round(w, 64);
  EXPECT_GT(t.compress_s / t.total(), 0.25);
}

TEST(CostModel, SpecDispatchMatchesDirectCalls) {
  const CostModel cost;
  const auto w = make_vgg19_workload();
  EXPECT_DOUBLE_EQ(
      cost.round_for_spec(w, "fp16").total(),
      cost.baseline_round(w, Precision::kFp32, Precision::kFp16).total());
  EXPECT_DOUBLE_EQ(cost.round_for_spec(w, "topk:b=2").total(),
                   cost.topk_round(w, 2.0).total());
  EXPECT_DOUBLE_EQ(cost.round_for_spec(w, "topkc:b=2").total(),
                   cost.topkc_round(w, 2.0, 64).total());
  EXPECT_DOUBLE_EQ(
      cost.round_for_spec(w, "thc:q=4:b=4:sat:partial").total(),
      cost.thc_round(w, 4, cost.rotation_iters(w, "partial")).total());
  EXPECT_DOUBLE_EQ(cost.round_for_spec(w, "powersgd:r=16").total(),
                   cost.powersgd_round(w, 16).total());
  EXPECT_THROW(cost.round_for_spec(w, "bogus"), gcs::Error);
}

TEST(CostModel, CompressionSchemesBeatFp32Baseline) {
  // The headline sanity check: every scheme's round time is below the
  // FP32 baseline at the paper's operating points.
  const CostModel cost;
  for (const auto& w : {make_bert_large_workload(), make_vgg19_workload()}) {
    const double fp32 =
        cost.baseline_round(w, Precision::kFp32, Precision::kFp32).total();
    for (const char* spec :
         {"topk:b=2", "topkc:b=2", "thc:q=4:b=4:sat:partial",
          "powersgd:r=4"}) {
      EXPECT_LT(cost.round_for_spec(w, spec).total(), fp32)
          << w.name << " " << spec;
    }
  }
}

TEST(CostModel, RerendezvousStallChargesLostRoundPlusWindowPlusMesh) {
  // The elastic recovery stall (DESIGN.md "Fault tolerance"): losing the
  // interrupted round's work dominates for heavy schemes, the rejoin
  // window is a fixed floor, and the mesh term grows with the survivor
  // count. TTA curves consume this via with_recovery_stall.
  const auto w = make_bert_large_workload();
  const CostModel cost;  // paper testbed, n = 4
  const double round = cost.round_for_spec(w, "topkc:b=8").total();
  const double window = cost.constants().rejoin_window_s;

  const double stall3 = cost.rerendezvous_stall_s(w, "topkc:b=8", 3);
  EXPECT_GT(stall3, round + window);  // lost round + window + mesh > both
  // The mesh term is per-link: more survivors, more connections.
  const double stall2 = cost.rerendezvous_stall_s(w, "topkc:b=8", 2);
  EXPECT_GT(stall3, stall2);
  // Mesh formation at loopback-scale latency is tiny next to the window.
  EXPECT_LT(stall3 - stall2, window);
  // Shrinking beyond the old world is nonsense and must be loud.
  EXPECT_THROW((void)cost.rerendezvous_stall_s(w, "topkc:b=8", 5),
               std::logic_error);
  // A heavier per-round spec pays a bigger lost-round term.
  const double fp32_stall = cost.rerendezvous_stall_s(w, "fp32", 3);
  const double fp32_round = cost.round_for_spec(w, "fp32").total();
  EXPECT_NEAR(fp32_stall - stall3, fp32_round - round, 1e-9);
}

}  // namespace
}  // namespace gcs::sim
