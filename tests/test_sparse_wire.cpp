// Tests for sparse/sparse_wire: formats, byte budgets, merge semantics.
#include "sparse/sparse_wire.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "sparse/topk.h"

namespace gcs {
namespace {

SparseVector random_sparse(std::size_t d, std::size_t k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> dense(d);
  for (auto& v : dense) v = static_cast<float>(rng.next_gaussian());
  const auto idx = top_k_indices(dense, k);
  return extract_sparse(dense, idx);
}

TEST(SparseWire, ExtractPairsIndicesWithValues) {
  const std::vector<float> x{10.0f, 20.0f, 30.0f};
  const std::vector<std::uint32_t> idx{0, 2};
  const auto v = extract_sparse(x, idx);
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v.values[0], 10.0f);
  EXPECT_EQ(v.values[1], 30.0f);
}

TEST(SparseWire, Fp16FormatByteBudget) {
  // 4 (count) + 4 bytes/index + 2 bytes/value = the paper's 48 bits/entry.
  const auto v = random_sparse(1000, 100, 1);
  const auto buf = encode_sparse_fp16(v);
  EXPECT_EQ(buf.size(), 4u + 100u * 6u);
}

TEST(SparseWire, Fp16RoundTrip) {
  const auto v = random_sparse(5000, 250, 2);
  const auto decoded = decode_sparse_fp16(encode_sparse_fp16(v));
  ASSERT_EQ(decoded.size(), v.size());
  EXPECT_EQ(decoded.indices, v.indices);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(decoded.values[i], v.values[i],
                std::fabs(v.values[i]) / 1024.0f + 1e-6f);
  }
}

TEST(SparseWire, Delta16RoundTripSmallGaps) {
  const auto v = random_sparse(10000, 1000, 3);  // gaps << 65536
  const auto decoded = decode_sparse_delta16(encode_sparse_delta16(v));
  EXPECT_EQ(decoded.indices, v.indices);
}

TEST(SparseWire, Delta16HandlesHugeGaps) {
  SparseVector v;
  v.indices = {10, 200000, 200001};
  v.values = {1.0f, 2.0f, 3.0f};
  const auto decoded = decode_sparse_delta16(encode_sparse_delta16(v));
  ASSERT_EQ(decoded.indices.size(), 3u);
  EXPECT_EQ(decoded.indices[1], 200000u);
  EXPECT_EQ(decoded.values[2], 3.0f);
}

TEST(SparseWire, Delta16IsSmallerThanPlain) {
  const auto v = random_sparse(100000, 5000, 4);
  EXPECT_LT(encode_sparse_delta16(v).size(), encode_sparse_fp16(v).size());
}

TEST(SparseWire, MalformedPayloadThrows) {
  ByteBuffer junk(3);
  EXPECT_THROW(decode_sparse_fp16(junk), Error);
}

TEST(SparseWire, ScatterAdd) {
  SparseVector v;
  v.indices = {1, 3};
  v.values = {2.0f, -1.0f};
  std::vector<float> acc(5, 1.0f);
  scatter_add(v, acc);
  EXPECT_EQ(acc[1], 3.0f);
  EXPECT_EQ(acc[3], 0.0f);
  EXPECT_EQ(acc[0], 1.0f);
}

TEST(SparseWire, ScatterAddOutOfRangeThrows) {
  SparseVector v;
  v.indices = {7};
  v.values = {1.0f};
  std::vector<float> acc(5);
  EXPECT_THROW(scatter_add(v, acc), std::logic_error);
}

TEST(SparseWire, MergeSumCombinesDuplicates) {
  SparseVector a, b;
  a.indices = {1, 4, 9};
  a.values = {1.0f, 2.0f, 3.0f};
  b.indices = {4, 9, 12};
  b.values = {10.0f, 20.0f, 30.0f};
  const auto m = merge_sum(a, b);
  EXPECT_EQ(m.indices, (std::vector<std::uint32_t>{1, 4, 9, 12}));
  EXPECT_EQ(m.values, (std::vector<float>{1.0f, 12.0f, 23.0f, 30.0f}));
}

TEST(SparseWire, MergeSumWithEmpty) {
  SparseVector a, empty;
  a.indices = {0};
  a.values = {5.0f};
  const auto m = merge_sum(a, empty);
  EXPECT_EQ(m.indices, a.indices);
  EXPECT_EQ(m.values, a.values);
}

TEST(SparseWire, MergeEqualsScatterAdd) {
  const auto a = random_sparse(2000, 100, 5);
  const auto b = random_sparse(2000, 100, 6);
  const auto merged = merge_sum(a, b);
  std::vector<float> dense1(2000, 0.0f), dense2(2000, 0.0f);
  scatter_add(a, dense1);
  scatter_add(b, dense1);
  scatter_add(merged, dense2);
  for (std::size_t i = 0; i < dense1.size(); ++i) {
    EXPECT_FLOAT_EQ(dense1[i], dense2[i]);
  }
}

}  // namespace
}  // namespace gcs
