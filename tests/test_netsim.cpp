// Tests for netsim: cost formulas, monotonicity, incast behaviour.
#include "netsim/network_model.h"

#include <gtest/gtest.h>

namespace gcs::netsim {
namespace {

NetworkModel ideal() {
  LinkSpec link;
  link.bandwidth_bytes_per_sec = 1e9;
  link.latency_sec = 0.0;
  CollectiveEfficiency eff;
  eff.ring = eff.tree = eff.all_gather = eff.ps = 1.0;
  return NetworkModel(link, eff);
}

TEST(NetworkModel, RingFormula) {
  // 2(n-1)/n x payload / BW with n=4: 1.5 x.
  const auto m = ideal();
  EXPECT_NEAR(m.ring_all_reduce_time(4, 1e9), 1.5, 1e-9);
  EXPECT_NEAR(m.ring_all_reduce_time(2, 1e9), 1.0, 1e-9);
}

TEST(NetworkModel, SingleWorkerIsFree) {
  const auto m = ideal();
  EXPECT_EQ(m.ring_all_reduce_time(1, 1e9), 0.0);
  EXPECT_EQ(m.all_gather_time(1, 1e9), 0.0);
  EXPECT_EQ(m.ps_aggregate_time(1, 1e9), 0.0);
}

TEST(NetworkModel, AllGatherFormula) {
  const auto m = ideal();
  EXPECT_NEAR(m.all_gather_time(4, 1e9), 3.0, 1e-9);
}

TEST(NetworkModel, TreeUsesLogSteps) {
  const auto m = ideal();
  EXPECT_NEAR(m.tree_all_reduce_time(4, 1e9), 4.0, 1e-9);   // 2*log2(4)
  EXPECT_NEAR(m.tree_all_reduce_time(8, 1e9), 6.0, 1e-9);
}

TEST(NetworkModel, LatencyTermCountsSteps) {
  LinkSpec link;
  link.bandwidth_bytes_per_sec = 1e12;
  link.latency_sec = 1e-3;
  CollectiveEfficiency eff;
  const NetworkModel m(link, eff);
  // 2(n-1) = 6 latency terms dominate a tiny payload.
  EXPECT_NEAR(m.ring_all_reduce_time(4, 8.0), 6e-3, 1e-4);
}

TEST(NetworkModel, IncastPenaltyGrows) {
  EXPECT_EQ(incast_penalty(1), 1.0);
  EXPECT_GT(incast_penalty(3), 1.0);
  EXPECT_GT(incast_penalty(15), incast_penalty(3));
}

TEST(NetworkModel, PsSlowerThanRingForLargeN) {
  const auto m = ideal();
  // PS serializes (n-1)x payload through one link both ways (plus incast),
  // so it must lose to the ring for any n >= 3.
  for (int n : {3, 4, 8, 16}) {
    EXPECT_GT(m.ps_aggregate_time(n, 1e9), m.ring_all_reduce_time(n, 1e9))
        << n;
  }
}

TEST(NetworkModel, ColocatedPsShardsTheLoad) {
  const auto m = ideal();
  EXPECT_LT(m.ps_aggregate_time(4, 1e9, /*colocated=*/true),
            m.ps_aggregate_time(4, 1e9, /*colocated=*/false));
}

TEST(NetworkModel, MonotoneInPayload) {
  const NetworkModel m;  // testbed defaults
  double prev = 0.0;
  for (double bytes : {1e6, 1e7, 1e8, 1e9}) {
    const double t = m.ring_all_reduce_time(4, bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(NetworkModel, EfficiencyScalesTime) {
  LinkSpec link;
  link.bandwidth_bytes_per_sec = 1e9;
  link.latency_sec = 0.0;
  CollectiveEfficiency full, half;
  full.ring = 1.0;
  half.ring = 0.5;
  EXPECT_NEAR(NetworkModel(link, half).ring_all_reduce_time(4, 1e9),
              2.0 * NetworkModel(link, full).ring_all_reduce_time(4, 1e9),
              1e-9);
}

TEST(NetworkModel, TestbedDefaultsMatchPaperScale) {
  // Sanity: FP32 ring all-reduce of BERT-large-sized gradients at the
  // default efficiencies lands in the hundreds of milliseconds — the
  // regime the paper's Table 2 implies.
  const NetworkModel m;
  const double bytes = 336e6 * 4.0;
  const double t = m.ring_all_reduce_time(4, bytes);
  EXPECT_GT(t, 0.1);
  EXPECT_LT(t, 0.5);
}

}  // namespace
}  // namespace gcs::netsim
