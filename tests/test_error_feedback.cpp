// Tests for core/error_feedback: compensation and memory semantics.
#include "core/error_feedback.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/check.h"

namespace gcs::core {
namespace {

TEST(ErrorFeedback, DisabledIsPassThrough) {
  ErrorFeedback ef(2, 3, /*enabled=*/false);
  const std::vector<float> grad{1.0f, 2.0f, 3.0f};
  std::vector<float> y(3);
  ef.compensate(0, grad, y);
  EXPECT_EQ(y, grad);
  EXPECT_FALSE(ef.enabled());
  // absorb is a no-op; no crash.
  ef.absorb(0, y, grad);
}

TEST(ErrorFeedback, MemoryStartsZero) {
  ErrorFeedback ef(1, 2, true);
  const std::vector<float> grad{5.0f, -1.0f};
  std::vector<float> y(2);
  ef.compensate(0, grad, y);
  EXPECT_EQ(y, grad);
}

TEST(ErrorFeedback, AbsorbStoresResidual) {
  ErrorFeedback ef(1, 2, true);
  const std::vector<float> y{4.0f, 2.0f};
  const std::vector<float> sent{3.0f, 2.0f};
  ef.absorb(0, y, sent);
  const auto mem = ef.memory(0);
  EXPECT_EQ(mem[0], 1.0f);
  EXPECT_EQ(mem[1], 0.0f);

  // Next round: memory is added back.
  const std::vector<float> grad{10.0f, 10.0f};
  std::vector<float> y2(2);
  ef.compensate(0, grad, y2);
  EXPECT_EQ(y2[0], 11.0f);
  EXPECT_EQ(y2[1], 10.0f);
}

TEST(ErrorFeedback, MaskedAbsorbKeepsUnsent) {
  ErrorFeedback ef(1, 4, true);
  const std::vector<float> y{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<std::uint8_t> mask{1, 0, 1, 0};
  ef.absorb_masked(0, y, mask);
  const auto mem = ef.memory(0);
  EXPECT_EQ(mem[0], 0.0f);
  EXPECT_EQ(mem[1], 2.0f);
  EXPECT_EQ(mem[2], 0.0f);
  EXPECT_EQ(mem[3], 4.0f);
}

TEST(ErrorFeedback, WorkersAreIndependent) {
  ErrorFeedback ef(2, 1, true);
  ef.absorb(0, std::vector<float>{7.0f}, std::vector<float>{0.0f});
  EXPECT_EQ(ef.memory(0)[0], 7.0f);
  EXPECT_EQ(ef.memory(1)[0], 0.0f);
}

TEST(ErrorFeedback, ResetClears) {
  ErrorFeedback ef(1, 1, true);
  ef.absorb(0, std::vector<float>{3.0f}, std::vector<float>{0.0f});
  ef.reset();
  EXPECT_EQ(ef.memory(0)[0], 0.0f);
}

TEST(ErrorFeedback, EnergyIsConserved) {
  // Over two rounds where nothing is transmitted, the memory accumulates
  // the full gradient sum (no leakage).
  ErrorFeedback ef(1, 2, true);
  const std::vector<float> zero{0.0f, 0.0f};
  std::vector<float> y(2);
  ef.compensate(0, std::vector<float>{1.0f, 2.0f}, y);
  ef.absorb(0, y, zero);
  ef.compensate(0, std::vector<float>{1.0f, 2.0f}, y);
  EXPECT_EQ(y[0], 2.0f);
  EXPECT_EQ(y[1], 4.0f);
}

TEST(ErrorFeedback, SizeMismatchThrows) {
  ErrorFeedback ef(1, 3, true);
  std::vector<float> y(2);
  EXPECT_THROW(ef.compensate(0, std::vector<float>{1.0f}, y),
               std::logic_error);
}

TEST(ErrorFeedback, RemapCarriesSurvivorRowsBitExact) {
  // The elastic carry-over primitive: the shrunken bank's row i is the
  // old bank's row survivors[i], byte for byte, and the dropped worker's
  // residual is gone.
  ErrorFeedback ef(4, 3, true);
  std::vector<float> y(3);
  const std::vector<float> zero(3, 0.0f);
  for (int w = 0; w < 4; ++w) {
    const std::vector<float> grad{0.5f * static_cast<float>(w + 1),
                                  -1.25f * static_cast<float>(w),
                                  3.75f};
    ef.compensate(w, grad, y);
    ef.absorb(w, y, zero);  // memory = y (nothing transmitted)
  }
  const std::vector<int> survivors{0, 1, 3};
  const ErrorFeedback remapped = ef.remap(survivors);
  EXPECT_TRUE(remapped.enabled());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const auto original = ef.memory(survivors[i]);
    const auto carried = remapped.memory(static_cast<int>(i));
    ASSERT_EQ(carried.size(), original.size());
    EXPECT_EQ(std::memcmp(carried.data(), original.data(),
                          carried.size() * sizeof(float)),
              0)
        << "worker " << survivors[i];
  }
}

TEST(ErrorFeedback, RemapOfDisabledStaysDisabled) {
  ErrorFeedback ef(3, 2, /*enabled=*/false);
  const std::vector<int> survivors{0, 2};
  const ErrorFeedback remapped = ef.remap(survivors);
  EXPECT_FALSE(remapped.enabled());
  const std::vector<float> grad{1.0f, 2.0f};
  std::vector<float> y(2);
  remapped.compensate(1, grad, y);
  EXPECT_EQ(y, grad);
}

TEST(ErrorFeedback, RemapRejectsBadSurvivorSets) {
  // Shares check_survivor_set with the codecs' remap_workers — same
  // rules, same gcs::Error, one place to change them.
  ErrorFeedback ef(3, 2, true);
  EXPECT_THROW((void)ef.remap(std::vector<int>{}), Error);
  EXPECT_THROW((void)ef.remap(std::vector<int>{3}), Error);
  EXPECT_THROW((void)ef.remap(std::vector<int>{1, 0}), Error);
  EXPECT_THROW((void)ef.remap(std::vector<int>{1, 1}), Error);
}

}  // namespace
}  // namespace gcs::core
